// The Theorem-4 solver and determinant: the paper's main result.
//
// Pipeline (section 3, "From Theorem 3 we can obtain ... size-efficient
// randomized circuits for solving general non-singular systems"):
//
//   1. Draw the random Hankel H, diagonal D, row vector u, column vector v
//      with entries from S; form A-tilde = A H D.               [Theorem 2]
//   2. a_i = u A-tilde^i v for i < 2n, either via Krylov doubling (9)
//      [O(n^w log n), the processor-efficient dense route] or via 2n
//      black-box products (8) [the cheap route when one product costs
//      o(n^2): sparse O(nnz), structured O(M(n))].
//   3. T = Toeplitz(a_0..a_{2n-2}) (Lemma 1); find charpoly(T)  [Theorem 3]
//      and solve T c = (a_n..a_{2n-1}) by Cayley-Hamilton on T.
//   4. c is w.h.p. the characteristic polynomial of A-tilde     [est. (2)];
//      Cayley-Hamilton on A-tilde (through the Krylov block of b) gives
//      x-tilde = A-tilde^{-1} b, and x = H D x-tilde.
//   5. det(A) = (-1)^n g(0) / (det(H) det(D)), det(H) via the row-mirror
//      Toeplitz and Theorem 3.
//
// Every stage touches A only through matrix-vector products, so kp_solve /
// kp_det accept any matrix::LinOp; dense matrix::Matrix<F> call sites keep
// working through an adapter overload that wraps a DenseBox.  The
// preconditioned operator is composed lazily (PreconditionedBox); only the
// dense doubling route materializes A-tilde.
//
// Failure handling (the Las Vegas layer, see DESIGN.md section 9):
//
//   * Every detected failure carries a util::Status naming its FailureKind
//     and Stage, and every attempt leaves a util::Diag (seeds, what was
//     re-drawn, op cost) in SolveResult::diags.
//   * Retries are STAGE-TARGETED: the paper's failure events are
//     independent, so a degenerate u/v projection (Lemma 2) re-draws only
//     u, v; a singular/unlucky preconditioner (Theorem 2 / estimate (1))
//     re-draws only H, D; only a verify mismatch -- or a second failure of
//     the same component -- forces a full restart.  Full restarts also
//     escalate |S|.  The two components draw from independent forked
//     streams (util/prng.h), so a targeted re-draw cannot disturb the other
//     component's randomness.
//   * A per-attempt op budget (SolverOptions::op_budget_per_attempt) stops
//     the Las Vegas loop on pathological inputs and degrades to the dense
//     baseline (Gaussian elimination on the materialized operator), which
//     also deterministically separates kSingularInput from bad luck.
//
// On non-singular inputs the per-attempt failure probability is
// <= 3n^2/|S| (estimate (2)); the returned solution is verified (Las Vegas)
// when options.verify is set, so a wrong x is never returned.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/annihilator.h"
#include "core/krylov.h"
#include "core/preconditioners.h"
#include "core/wiedemann.h"
#include "field/concepts.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "matrix/matmul.h"
#include "seq/newton_toeplitz.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::core {

/// Tuning knobs for the Theorem-4 pipeline.
struct SolverOptions {
  std::uint64_t sample_size = 1ULL << 30;  ///< card(S); bound is 3n^2/|S|
  int max_attempts = 3;                    ///< Las Vegas retries
  bool verify = true;                      ///< check A x = b before returning
  matrix::MatMulStrategy matmul = matrix::MatMulStrategy::kClassical;
  seq::NewtonIdentityMethod newton = seq::NewtonIdentityMethod::kTriangularSolve;
  /// How the Krylov data of steps 2 and 4 is produced.  kAuto keys off the
  /// operator's BoxStructure: doubling (9) for dense operators, iterative
  /// (8) for sparse/structured ones where n black-box products beat an
  /// O(n^omega log n) dense doubling.
  KrylovRoute route = KrylovRoute::kAuto;
  /// Replace the two O(n)-deep sequential finishes (the Toeplitz
  /// Cayley-Hamilton iteration and the triangular Newton-identity solve)
  /// with their doubling / power-series counterparts, so that the realized
  /// CIRCUIT has poly-logarithmic depth as Theorem 4 states.  Costs a
  /// little more work; the default optimizes sequential work instead.
  bool depth_optimal = false;
  /// Cap on the field operations one attempt may spend (0 = unlimited).
  /// When a failed attempt exceeds it, the Las Vegas loop stops and the
  /// pipeline degrades to the dense baseline route instead of looping on a
  /// pathological input.
  std::uint64_t op_budget_per_attempt = 0;
  /// After the attempts are exhausted, materialize the operator and settle
  /// the outcome with Gaussian elimination: a deterministic answer, or a
  /// deterministic kSingularInput verdict.
  bool dense_fallback = false;
  /// Record a util::Diag per attempt in SolveResult::diags.
  bool collect_diag = true;
  /// Width b of the Krylov projections on the iterative route: b = 1 is the
  /// scalar sequence u A-tilde^i v; b > 1 switches to block projections
  /// U A-tilde^i V with the sigma-basis generator (core/block_krylov.h,
  /// seq/matrix_berlekamp_massey.h), cutting the iteration count ~b x and
  /// batching every step's applies over the pool.  Falls back to 1 when the
  /// route is doubling, n <= 1, or the field is too small for the
  /// det-by-interpolation step (characteristic < 2n + 2).
  std::size_t block_width = 1;
  /// Cooperative deadline/cancellation token (util/deadline.h), checked at
  /// the same stage boundaries as the KP_FAULT_POINT sites.  A trip aborts
  /// the run with kDeadlineExceeded/kCancelled at the stage that noticed:
  /// no further attempts, no dense fallback -- the caller stopped wanting
  /// the answer.  Not owned; must outlive the call.  nullptr = uncontrolled.
  const util::ExecControl* control = nullptr;
};

/// Outcome of one pipeline run.
template <kp::field::Field F>
struct SolveResult {
  bool ok = false;                          ///< false: singular or unlucky
  std::vector<typename F::Element> x;       ///< solution of A x = b
  typename F::Element det{};                ///< det(A) (always computed)
  std::vector<typename F::Element> charpoly_at;  ///< charpoly of A-tilde
  int attempts = 0;
  KrylovRoute route_used = KrylovRoute::kAuto;   ///< resolved route
  util::Status status;             ///< Ok, or the run's final failure
  std::vector<util::Diag> diags;   ///< one record per attempt (collect_diag)
  bool used_fallback = false;      ///< answer came from the dense baseline
  std::uint64_t sample_size_used = 0;  ///< |S| of the last attempt
};

namespace detail {

/// Steps 3-4a of one attempt: from the projected sequence a_0..a_{2n-1} of
/// the preconditioned operator, recover the generator (monic, degree n,
/// g(0) != 0) through Lemma 1 and the Theorem-3 Toeplitz machinery.  The two
/// distinguishable failures map onto the taxonomy:
///   det(T) = 0  -> the projection lost information (deg f_u < n, Lemma 2):
///                  kDegenerateProjection, re-draw u, v;
///   g(0) = 0    -> A-tilde is singular (A itself, or an unlucky H/D):
///                  kZeroConstantTerm, re-draw H, D.
template <kp::field::Field F>
util::Status generator_from_sequence_status(
    const F& f, const std::vector<typename F::Element>& seq, std::size_t n,
    const SolverOptions& opt, const kp::poly::PolyRing<F>& ring,
    std::vector<typename F::Element>& g_out) {
  // Lemma 1: T = T_n of the sequence; solve T y = (a_n .. a_{2n-1}) through
  // the Theorem-3 characteristic polynomial of T.
  auto t = matrix::Toeplitz<F>::from_sequence(n, seq);
  std::vector<typename F::Element> rhs(seq.begin() + static_cast<std::ptrdiff_t>(n),
                                       seq.end());
  if (KP_FAULT_POINT(util::Stage::kNewtonToeplitz)) {
    return util::Status::Injected(util::FailureKind::kDegenerateProjection,
                                  util::Stage::kNewtonToeplitz);
  }
  std::vector<typename F::Element> y;
  if (opt.depth_optimal) {
    // Same Cayley-Hamilton solve, but through a doubling Krylov block on
    // the dense T, as the paper does ("Again from (9) we deduce ..."):
    // depth O(log^2 n) instead of the O(n)-deep iterated Toeplitz applies.
    const auto p = seq::toeplitz_charpoly(f, t, opt.newton);
    if (f.is_zero(p[0])) {
      return util::Status::Fail(util::FailureKind::kDegenerateProjection,
                                util::Stage::kNewtonToeplitz,
                                "det(T) = 0: deg f_u < n");
    }
    const auto q = solution_combination(f, p);
    const auto block = krylov_block(f, t.to_dense(f), rhs, n, opt.matmul);
    y = krylov_combine(f, block, q);
  } else {
    y = seq::toeplitz_solve_charpoly(f, t, rhs, ring, opt.newton);
  }
  if (y.empty()) {
    return util::Status::Fail(util::FailureKind::kDegenerateProjection,
                              util::Stage::kNewtonToeplitz,
                              "det(T) = 0: deg f_u < n");
  }

  // y = (c_{n-1}, ..., c_0); generator g = x^n - c_{n-1} x^{n-1} - ... - c_0.
  std::vector<typename F::Element> g(n + 1, f.zero());
  g[n] = f.one();
  for (std::size_t i = 0; i < n; ++i) g[n - 1 - i] = f.neg(y[i]);
  if (KP_FAULT_POINT(util::Stage::kCharpoly)) {
    return util::Status::Injected(util::FailureKind::kZeroConstantTerm,
                                  util::Stage::kCharpoly);
  }
  if (f.eq(g[0], f.zero())) {
    return util::Status::Fail(util::FailureKind::kZeroConstantTerm,
                              util::Stage::kCharpoly,
                              "g(0) = 0: A-tilde singular");
  }
  g_out = std::move(g);
  return util::Status::Ok();
}

/// Effective block width for the iterative route: the requested
/// SolverOptions::block_width clamped to n, or 1 (the scalar sequence) when
/// blocking is off, the system is trivial, or the field cannot supply the
/// 2n + 2 distinct evaluation points the sigma-basis det-by-interpolation
/// recovery may need.
template <kp::field::Field F>
std::size_t effective_block_width(const F& f, const SolverOptions& opt,
                                  std::size_t n) {
  if (opt.block_width <= 1 || n <= 1) return 1;
  const std::uint64_t p = f.characteristic();
  if (p != 0 && p < 2 * n + 2) return 1;
  return opt.block_width < n ? opt.block_width : n;
}

/// Dense A-tilde for the doubling route: the O(n^2 polylog) Hankel-product
/// formation when the box exposes its dense matrix, otherwise n black-box
/// products (identical values either way -- exact arithmetic).
template <kp::field::Field F, matrix::LinOp B>
matrix::Matrix<F> dense_preconditioned(const F& f,
                                       const kp::poly::PolyRing<F>& ring,
                                       const B& a, const Preconditioner<F>& pre) {
  if constexpr (requires {
                  { a.matrix() } -> std::convertible_to<const matrix::Matrix<F>&>;
                }) {
    return pre.apply_dense(f, ring, a.matrix());
  } else {
    return matrix::materialize_dense(f, pre.box(f, ring, a));
  }
}

/// The degraded route: materialize A and settle the outcome with Gaussian
/// elimination.  Deterministic, O(n^3) -- the price of certainty when the
/// randomized attempts were stopped (op budget) or exhausted
/// (dense_fallback); also the only path that PROVES kSingularInput.
template <kp::field::Field F, matrix::LinOp B>
void dense_fallback_run(const F& f, const B& a,
                        const std::vector<typename F::Element>* rhs,
                        SolveResult<F>& res) {
  res.used_fallback = true;
  const matrix::Matrix<F>& dense = [&]() -> matrix::Matrix<F> {
    if constexpr (requires {
                    { a.matrix() } -> std::convertible_to<const matrix::Matrix<F>&>;
                  }) {
      return a.matrix();
    } else {
      return matrix::materialize_dense(f, a);
    }
  }();
  res.det = matrix::det_gauss(f, dense);
  if (f.is_zero(res.det)) {
    res.ok = false;
    res.status = util::Status::Fail(util::FailureKind::kSingularInput,
                                    util::Stage::kSolveFinish,
                                    "Gaussian elimination: det(A) = 0");
    return;
  }
  if (rhs) {
    auto x = matrix::solve_gauss(f, dense, *rhs);
    if (!x) {
      res.ok = false;
      res.status = util::Status::Fail(util::FailureKind::kSingularInput,
                                      util::Stage::kSolveFinish,
                                      "Gaussian elimination: no solution");
      return;
    }
    res.x = *std::move(x);
  }
  res.charpoly_at.clear();  // the baseline route does not produce one
  res.ok = true;
  res.status = util::Status::Ok();
}

/// One shared Las Vegas loop behind kp_solve (rhs != nullptr) and kp_det
/// (rhs == nullptr): the pipelines differ only in whether steps 4b-5 solve
/// and verify, so the draw scheme, retry policy, and diagnostics live here
/// exactly once.
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
SolveResult<F> theorem4_run(const F& f, const B& a,
                            const std::vector<typename F::Element>* rhs,
                            kp::util::Prng& prng, const SolverOptions& opt) {
  using E = typename F::Element;
  using util::FailureKind;
  using util::Stage;
  using util::Status;

  SolveResult<F> res;
  const std::size_t n = a.dim();

  // Public-entry validation: malformed inputs are rejected with a Status,
  // never fed into the pipeline.
  Status valid = util::Require(n > 0, FailureKind::kInvalidArgument,
                               Stage::kNone, "operator dimension is zero");
  if (valid.ok() && rhs != nullptr) {
    valid = util::Require(rhs->size() == n, FailureKind::kInvalidArgument,
                          Stage::kNone, "dim(b) != dim(A)");
  }
  if (valid.ok()) {
    valid = util::Require(opt.max_attempts >= 1, FailureKind::kInvalidArgument,
                          Stage::kNone, "max_attempts must be >= 1");
  }
  if (!valid.ok()) {
    res.status = valid;
    return res;
  }

  kp::poly::PolyRing<F> ring(f);
  const auto route = resolve_route(opt.route, matrix::box_structure(a));
  res.route_used = route;

  // Independent per-component streams: a targeted re-draw of one component
  // advances only its own stream, so the other component's randomness (and
  // hence any backend-independent reproducibility) is untouched.
  kp::util::Prng pre_stream = prng.fork(0x7072652d48440000ULL);   // "pre-HD"
  kp::util::Prng proj_stream = prng.fork(0x70726f6a2d757600ULL);  // "proj-uv"

  std::optional<Preconditioner<F>> pre;
  std::vector<E> u(n), v(n);
  std::uint64_t pre_seed = 0, proj_seed = 0;
  bool redraw_pre = true, redraw_proj = true;
  // Escalation state: has this component already been re-drawn ALONE since
  // the other last changed?  A second targeted failure then implicates the
  // pair and forces a full restart.
  bool pre_alone = false, proj_alone = false;
  std::uint64_t s = opt.sample_size;
  Status last = Status::Fail(FailureKind::kNone, Stage::kNone);

  for (res.attempts = 1; res.attempts <= opt.max_attempts; ++res.attempts) {
    kp::util::fault::AttemptScope attempt_scope(res.attempts);
    kp::util::OpScope ops;
    util::Diag diag;
    diag.attempt = res.attempts;
    diag.sample_size = s;
    res.sample_size_used = s;

    const Status st = [&]() -> Status {
      // Deadline/cancellation checks share the fault-point boundaries: one
      // at the draw, one after the Krylov work, one before verification.
      if (Status ctl = util::ExecControl::check(opt.control, Stage::kDraw);
          !ctl.ok()) {
        return ctl;
      }
      if (KP_FAULT_POINT(Stage::kDraw)) {
        return Status::Injected(FailureKind::kInjectedFault, Stage::kDraw);
      }
      if (redraw_pre) {
        kp::util::Prng r = pre_stream.fork(static_cast<std::uint64_t>(res.attempts));
        pre_seed = r.seed();
        pre = Preconditioner<F>::draw(f, n, r, s);
      }
      if (redraw_proj) {
        kp::util::Prng r = proj_stream.fork(static_cast<std::uint64_t>(res.attempts));
        proj_seed = r.seed();
        for (auto& e : u) e = f.sample(r, s);
        for (auto& e : v) e = f.sample(r, s);
      }
      diag.precondition_seed = pre_seed;
      diag.projection_seed = proj_seed;
      diag.redrew_precondition = redraw_pre;
      diag.redrew_projection = redraw_proj;

      // Proactive Theorem-2 check: a zero diagonal entry makes D -- hence
      // A-tilde -- singular; catch it before spending the Krylov work.
      if (KP_FAULT_POINT(Stage::kPrecondition)) {
        return Status::Injected(FailureKind::kSingularPrecondition,
                                Stage::kPrecondition);
      }
      for (const auto& d : pre->diagonal.entries()) {
        if (f.is_zero(d)) {
          return Status::Fail(FailureKind::kSingularPrecondition,
                              Stage::kPrecondition,
                              "zero diagonal entry: det(D) = 0");
        }
      }

      std::vector<E> g;   // charpoly of A-tilde
      std::vector<E> xt;  // A-tilde^{-1} b
      if (route == KrylovRoute::kDoubling) {
        const auto at = dense_preconditioned(f, ring, a, *pre);
        // a_i = u A-tilde^i v by doubling (9).
        const auto seq = krylov_sequence_doubling(f, at, u, v, 2 * n, opt.matmul);
        if (KP_FAULT_POINT(Stage::kProjection)) {
          return Status::Injected(FailureKind::kDegenerateProjection,
                                  Stage::kProjection);
        }
        Status gst = generator_from_sequence_status(f, seq, n, opt, ring, g);
        if (!gst.ok()) return gst;
        if (rhs) {
          // Cayley-Hamilton solve of A-tilde xt = b through the Krylov block.
          const auto q = solution_combination(f, g);
          const auto block = krylov_block(f, at, *rhs, n, opt.matmul);
          xt = krylov_combine(f, block, q);
        }
      } else if (const std::size_t bw = effective_block_width(f, opt, n);
                 bw > 1) {
        // Block route: ~2n/bw batched block applies feeding the sigma-basis,
        // then the same annihilator finish as the scalar path.  U, V are
        // re-derived from the recorded projection seed, so a kept projection
        // replays bit-identically and a redraw targets only this stream.
        const auto at = pre->box(f, ring, a);
        kp::util::Prng br{proj_seed};
        auto g_or = detail::block_charpoly_candidate(f, at, bw, br, s);
        if (!g_or.ok()) return g_or.status();
        g = std::move(g_or).value();
        if (g.size() != n + 1) {
          return Status::Fail(FailureKind::kDegenerateProjection,
                              Stage::kBlockGenerator,
                              "deg det G != n: generator misses charpoly");
        }
        if (KP_FAULT_POINT(Stage::kCharpoly)) {
          return Status::Injected(FailureKind::kZeroConstantTerm,
                                  Stage::kCharpoly);
        }
        if (f.eq(g[0], f.zero())) {
          return Status::Fail(FailureKind::kZeroConstantTerm, Stage::kCharpoly,
                              "g(0) = 0: A-tilde singular");
        }
        if (rhs) xt = solve_from_annihilator(f, at, g, *rhs);
      } else {
        // Route (8): 2n products with the lazily composed A*H*D.
        const auto at = pre->box(f, ring, a);
        const auto seq = matrix::krylov_sequence_iterative(f, at, u, v, 2 * n);
        if (KP_FAULT_POINT(Stage::kProjection)) {
          return Status::Injected(FailureKind::kDegenerateProjection,
                                  Stage::kProjection);
        }
        Status gst = generator_from_sequence_status(f, seq, n, opt, ring, g);
        if (!gst.ok()) return gst;
        if (rhs) xt = solve_from_annihilator(f, at, g, *rhs);
      }

      if (Status ctl =
              util::ExecControl::check(opt.control, Stage::kSolveFinish);
          !ctl.ok()) {
        return ctl;
      }
      // det(A-tilde) = (-1)^n g(0); divide out the preconditioner.  det(H D)
      // can only vanish on an unlucky draw (g(0) != 0 already rules out the
      // composite), but the zero check guards the division regardless.
      const auto det_hd = pre->det(f, opt.newton);
      if (f.is_zero(det_hd)) {
        return Status::Fail(FailureKind::kSingularPrecondition,
                            Stage::kPrecondition, "det(H D) = 0");
      }
      const auto det_at = (n % 2 == 0) ? g[0] : f.neg(g[0]);
      const E det_a = f.div(det_at, det_hd);

      std::vector<E> x;
      if (rhs) {
        if (KP_FAULT_POINT(Stage::kSolveFinish)) {
          return Status::Injected(FailureKind::kVerifyMismatch,
                                  Stage::kSolveFinish);
        }
        x = pre->unprecondition(f, ring, xt);
        if (opt.verify) {
          if (Status ctl =
                  util::ExecControl::check(opt.control, Stage::kVerify);
              !ctl.ok()) {
            return ctl;
          }
          if (KP_FAULT_POINT(Stage::kVerify)) {
            return Status::Injected(FailureKind::kVerifyMismatch, Stage::kVerify);
          }
          if (a.apply(x) != *rhs) {
            return Status::Fail(FailureKind::kVerifyMismatch, Stage::kVerify,
                                "A x != b");
          }
        }
      }
      res.x = std::move(x);
      res.det = det_a;
      res.charpoly_at = std::move(g);
      return Status::Ok();
    }();

    diag.kind = st.kind();
    diag.stage = st.stage();
    diag.injected = st.injected();
    diag.ops = ops.counts();
    if (opt.collect_diag) res.diags.push_back(diag);

    if (st.ok()) {
      res.ok = true;
      res.status = st;
      return res;
    }
    last = st;

    // A control failure is not bad luck: the caller stopped wanting the
    // answer, so neither further attempts nor the dense fallback may run.
    if (util::is_control_failure(st.kind())) {
      res.status = st;
      return res;
    }

    // Op budget: a pathologically expensive failed attempt stops the loop
    // (the degraded baseline below takes over instead of re-rolling).
    if (opt.op_budget_per_attempt != 0 &&
        diag.ops.total() > opt.op_budget_per_attempt) {
      last = Status::Fail(FailureKind::kOpBudgetExhausted, st.stage(),
                          "attempt exceeded op_budget_per_attempt");
      break;
    }

    // Stage-targeted retry: re-draw only the component the FailureKind
    // implicates; everything else (verify mismatch, injected synthetic
    // faults) restarts both.
    bool want_pre, want_proj;
    switch (st.kind()) {
      case FailureKind::kDegenerateProjection:
        want_pre = false;
        want_proj = true;
        break;
      case FailureKind::kSingularPrecondition:
      case FailureKind::kZeroConstantTerm:
        want_pre = true;
        want_proj = false;
        break;
      default:
        want_pre = true;
        want_proj = true;
        break;
    }
    if (!want_pre && proj_alone) want_pre = true;    // escalate: pair implicated
    if (!want_proj && pre_alone) want_proj = true;
    if (want_pre && want_proj) {
      pre_alone = proj_alone = false;
      // Full restarts escalate |S|: estimate (2) halves the failure bound
      // with every doubling (no-op once S already exceeds the field).
      if (s < (std::uint64_t{1} << 62)) s *= 2;
    } else if (want_proj) {
      proj_alone = true;
    } else {
      pre_alone = true;
    }
    redraw_pre = want_pre;
    redraw_proj = want_proj;
  }

  // Exhausted (or budget-stopped).  When the sample set could never carry
  // the est.-(2) bound, say so: the caller should route through the
  // section-5 field_lift extension (kp_solve_adaptive does).
  res.status = last;
  if (last.kind() != FailureKind::kOpBudgetExhausted &&
      n < (std::uint64_t{1} << 30) && opt.sample_size < 3 * n * n) {
    res.status = Status::Fail(
        FailureKind::kSampleSetTooSmall, Stage::kDraw,
        "card(S) < 3 n^2: use the section-5 extension lift");
  }

  if (last.kind() == FailureKind::kOpBudgetExhausted || opt.dense_fallback) {
    dense_fallback_run(f, a, rhs, res);
  }
  return res;
}

}  // namespace detail

/// Solves A x = b (and computes det A) with the Theorem-4 pipeline, for any
/// black-box operator A.
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
SolveResult<F> kp_solve(const F& f, const B& a,
                        const std::vector<typename F::Element>& b,
                        kp::util::Prng& prng, SolverOptions opt = {}) {
  return detail::theorem4_run(f, a, &b, prng, opt);
}

/// Determinant only (same pipeline, no right-hand side).
template <kp::field::Field F, matrix::LinOp B>
  requires std::same_as<typename B::Element, typename F::Element>
SolveResult<F> kp_det(const F& f, const B& a, kp::util::Prng& prng,
                      SolverOptions opt = {}) {
  return detail::theorem4_run<F, B>(f, a, nullptr, prng, opt);
}

/// Dense-matrix adapter: existing call sites keep their signature; the
/// matrix is wrapped in a DenseBox (kAuto then resolves to the doubling
/// route, reproducing the historical dense pipeline exactly).
template <kp::field::Field F>
SolveResult<F> kp_solve(const F& f, const matrix::Matrix<F>& a,
                        const std::vector<typename F::Element>& b,
                        kp::util::Prng& prng, SolverOptions opt = {}) {
  if (!a.is_square()) {
    SolveResult<F> res;
    res.status = util::Status::Fail(util::FailureKind::kInvalidArgument,
                                    util::Stage::kNone, "A must be square");
    return res;
  }
  const matrix::DenseViewBox<F> box(f, a);
  return kp_solve(f, box, b, prng, opt);
}

/// Dense-matrix adapter for the determinant.
template <kp::field::Field F>
SolveResult<F> kp_det(const F& f, const matrix::Matrix<F>& a,
                      kp::util::Prng& prng, SolverOptions opt = {}) {
  if (!a.is_square()) {
    SolveResult<F> res;
    res.status = util::Status::Fail(util::FailureKind::kInvalidArgument,
                                    util::Stage::kNone, "A must be square");
    return res;
  }
  const matrix::DenseViewBox<F> box(f, a);
  return kp_det(f, box, prng, opt);
}

}  // namespace kp::core

// Compiled circuit IR: the leveled register tape.
//
// compile() lowers the append-only Circuit arena into a Tape -- the flat,
// shippable execution form of a Theorem-4/6 circuit:
//
//   * constants are pooled by value (one register per distinct payload);
//   * dead nodes are eliminated, EXCEPT that every kDiv node stays live:
//     a division by zero is the paper's Las Vegas failure event, and the
//     tape must fail exactly when node-at-a-time evaluate() fails;
//   * arithmetic nodes are renumbered into contiguous topological levels
//     (level d holds exactly the nodes of arithmetic depth d+1, the paper's
//     depth measure), each level a block of {op, dst, a, b} instructions
//     over register slots;
//   * register slots are planned with a deterministic LIFO allocator; a
//     slot whose last read is at level L becomes reusable at level L+1, so
//     instructions within one level never alias each other's operands.
//
// The source circuit's accounting survives the lowering verbatim
// (source_size / source_depth / source_nodes), so Theorem-4/6 size and
// depth measurements are unchanged by compilation.  Evaluation lives in
// circuit/tape_eval.h, the file format in circuit/tape_io.h.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.h"

namespace kp::circuit {

/// Slot value for a dead leaf position (its input is never read).
inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// One lowered arithmetic node: dst <- a op b over register slots
/// (b == a for kNeg).
struct TapeInstr {
  Op op;
  std::uint32_t dst = 0, a = 0, b = 0;
};

/// One topological level: instrs[first, first + count), of which the
/// trailing `divs` are the level's kDiv instructions (the evaluator
/// zero-scans and batch-inverts them together).
struct TapeLevel {
  std::uint32_t first = 0, count = 0, divs = 0;
};

/// Embedded self-check vector (tape_io.h): one recorded evaluation over
/// GF(modulus).  ok == false records a division-by-zero run -- the check
/// then asserts the failure reproduces.
struct TestVector {
  std::uint64_t modulus = 0;
  std::vector<std::uint64_t> inputs;
  std::vector<std::uint64_t> randoms;
  std::vector<std::uint64_t> outputs;  ///< empty when ok == false
  bool ok = true;
};

/// The compiled circuit.  Plain data: everything the evaluator and the
/// serializer need, nothing else.
struct Tape {
  std::vector<TapeInstr> instrs;       ///< level-contiguous instruction list
  std::vector<TapeLevel> levels;
  std::vector<std::int64_t> constants;       ///< pooled payloads
  std::vector<std::uint32_t> constant_slots; ///< slot of constants[k]
  std::vector<std::uint32_t> input_slots;    ///< per input position; kNoSlot if dead
  std::vector<std::uint32_t> random_slots;   ///< per random position; kNoSlot if dead
  std::vector<std::uint32_t> output_slots;
  std::vector<NodeId> instr_nodes;     ///< source NodeId per instruction
  std::uint32_t num_regs = 0;          ///< register-slot high-water mark

  // Source-circuit accounting, preserved verbatim so a compiled tape
  // reports the same Theorem-4/6 measurements as its DAG.
  std::uint64_t source_size = 0;   ///< Circuit::size(): arithmetic nodes
  std::uint32_t source_depth = 0;  ///< Circuit::depth()
  std::uint64_t source_nodes = 0;  ///< Circuit::total_nodes()

  std::vector<TestVector> tests;   ///< embedded self-checks (tape_io.h)

  std::size_t num_levels() const { return levels.size(); }
  std::size_t num_instrs() const { return instrs.size(); }
};

/// Lowers a circuit into a Tape.  Deterministic: the same circuit always
/// compiles to the same tape (slot plan included), which is what makes the
/// serialized form and the round-trip byte-identity test meaningful.
inline Tape compile(const Circuit& c) {
  const std::vector<Node>& nodes = c.nodes();
  const std::size_t n = nodes.size();
  Tape t;
  t.source_size = c.size();
  t.source_depth = c.depth();
  t.source_nodes = n;

  const auto is_arith = [](Op op) {
    return op == Op::kAdd || op == Op::kSub || op == Op::kMul ||
           op == Op::kDiv || op == Op::kNeg;
  };

  // ---- liveness ----------------------------------------------------------
  // Roots: the outputs, plus every kDiv node -- node-at-a-time evaluate()
  // walks the whole arena, so a dead division still triggers the failure
  // event and the tape must preserve that.  One reverse sweep closes the
  // set (operands have smaller ids than their consumers).
  std::vector<char> live(n, 0);
  for (NodeId id : c.outputs()) live[id] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (nodes[i].op == Op::kDiv) live[i] = 1;
  }
  for (std::size_t i = n; i-- > 0;) {
    if (!live[i]) continue;
    const Node& nd = nodes[i];
    if (!is_arith(nd.op)) continue;
    live[nd.a] = 1;
    if (nd.op != Op::kNeg) live[nd.b] = 1;
  }

  // ---- levels ------------------------------------------------------------
  std::uint32_t depth_max = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (live[i] && is_arith(nodes[i].op)) {
      depth_max = std::max(depth_max, nodes[i].depth);
    }
  }
  std::vector<std::vector<NodeId>> by_level(depth_max);
  for (std::size_t i = 0; i < n; ++i) {
    if (live[i] && is_arith(nodes[i].op)) {
      by_level[nodes[i].depth - 1].push_back(static_cast<NodeId>(i));
    }
  }
  // Within a level: non-div instructions first, then the divs, each group
  // in id order (stable partition of the already id-sorted list).
  for (auto& lvl : by_level) {
    std::stable_partition(lvl.begin(), lvl.end(), [&](NodeId id) {
      return nodes[id].op != Op::kDiv;
    });
  }

  // ---- last use ----------------------------------------------------------
  // last_use[i] = highest level that reads node i (outputs: never freed).
  // A live node nobody reads (a dead division) expires at its own level.
  constexpr std::uint32_t kNeverFree = 0xffffffffu;
  std::vector<std::uint32_t> last_use(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i] || !is_arith(nodes[i].op)) continue;
    const Node& nd = nodes[i];
    last_use[nd.a] = std::max(last_use[nd.a], nd.depth);
    if (nd.op != Op::kNeg) last_use[nd.b] = std::max(last_use[nd.b], nd.depth);
  }
  for (NodeId id : c.outputs()) last_use[id] = kNeverFree;
  for (std::size_t i = 0; i < n; ++i) {
    if (live[i] && is_arith(nodes[i].op) && last_use[i] == 0) {
      last_use[i] = nodes[i].depth;
    }
  }
  // Pooled constants share one slot, so the pooled slot lives until the
  // last read of ANY node carrying the value.
  std::unordered_map<std::int64_t, std::uint32_t> const_last_use;
  for (std::size_t i = 0; i < n; ++i) {
    if (live[i] && nodes[i].op == Op::kConst) {
      auto [it, fresh] = const_last_use.emplace(nodes[i].value, last_use[i]);
      if (!fresh) it->second = std::max(it->second, last_use[i]);
    }
  }

  // ---- slot plan ---------------------------------------------------------
  // LIFO free list; slots whose last read is at level L are pushed onto the
  // list at the START of level L+1, never earlier, so no instruction's dst
  // can alias an operand read anywhere in its own level.
  std::vector<std::uint32_t> slot(n, kNoSlot);
  std::vector<std::uint32_t> free_list;
  std::vector<std::vector<std::uint32_t>> expire(depth_max + 1);
  std::uint32_t high = 0;
  const auto alloc = [&](std::uint32_t lu) {
    std::uint32_t s;
    if (!free_list.empty()) {
      s = free_list.back();
      free_list.pop_back();
    } else {
      s = high++;
    }
    if (lu != kNeverFree && lu <= depth_max) expire[lu].push_back(s);
    return s;
  };

  // Leaves first, in a fixed order: pooled constants (first-appearance
  // order), then inputs, then randoms.
  std::unordered_map<std::int64_t, std::uint32_t> const_slot;
  for (std::size_t i = 0; i < n; ++i) {
    if (!live[i] || nodes[i].op != Op::kConst) continue;
    const std::int64_t v = nodes[i].value;
    if (const auto it = const_slot.find(v); it != const_slot.end()) {
      slot[i] = it->second;
      continue;
    }
    const std::uint32_t s = alloc(const_last_use.at(v));
    const_slot.emplace(v, s);
    slot[i] = s;
    t.constants.push_back(v);
    t.constant_slots.push_back(s);
  }
  t.input_slots.reserve(c.inputs().size());
  for (NodeId id : c.inputs()) {
    t.input_slots.push_back(live[id] ? (slot[id] = alloc(last_use[id]))
                                     : kNoSlot);
  }
  t.random_slots.reserve(c.randoms().size());
  for (NodeId id : c.randoms()) {
    t.random_slots.push_back(live[id] ? (slot[id] = alloc(last_use[id]))
                                      : kNoSlot);
  }

  // Arithmetic levels.
  t.levels.reserve(depth_max);
  for (std::uint32_t d = 1; d <= depth_max; ++d) {
    for (std::uint32_t s : expire[d - 1]) free_list.push_back(s);
    TapeLevel lv;
    lv.first = static_cast<std::uint32_t>(t.instrs.size());
    for (NodeId id : by_level[d - 1]) {
      const Node& nd = nodes[id];
      TapeInstr in;
      in.op = nd.op;
      in.a = slot[nd.a];
      in.b = nd.op == Op::kNeg ? slot[nd.a] : slot[nd.b];
      in.dst = slot[id] = alloc(last_use[id]);
      if (nd.op == Op::kDiv) ++lv.divs;
      t.instrs.push_back(in);
      t.instr_nodes.push_back(id);
    }
    lv.count = static_cast<std::uint32_t>(t.instrs.size()) - lv.first;
    t.levels.push_back(lv);
  }

  t.num_regs = high;
  t.output_slots.reserve(c.outputs().size());
  for (NodeId id : c.outputs()) t.output_slots.push_back(slot[id]);
  return t;
}

}  // namespace kp::circuit

// The Baur-Strassen / Kaltofen-Singer derivative transform (Theorem 5).
//
// Given a circuit P of length l and depth d computing a single rational
// function f(x_1..x_k), produce a circuit Q computing f AND all partial
// derivatives df/dx_i, with length <= ~4l and depth O(d).  Q divides only
// by quantities P divides by, so no new zero-division is introduced --
// the property Theorem 6 leans on.
//
// The construction is reverse-mode differentiation over the DAG:
// each node's adjoint is accumulated from the uses of that node.  The
// accumulation style is the depth story of the paper's Figure 3 + Hoover
// et al.:
//   * kLinear   -- naive left-to-right accumulation: depth O(d * t) for
//                  fan-out t (what the paper starts from),
//   * kBalanced -- depth-weighted (Huffman-like) balanced trees: combining
//                  the two shallowest terms first keeps the total depth
//                  O(d), the Theorem-5 bound.
// bench_derivative measures both (experiments E7/E13).
#pragma once

#include <cassert>
#include <optional>
#include <queue>
#include <vector>

#include "circuit/circuit.h"

namespace kp::circuit {

enum class Accumulation {
  kLinear,
  kBalanced,
};

/// The gradient circuit: outputs are [f, df/dx_1, ..., df/dx_k] where x_i
/// are the INPUT leaves of src (in src.inputs() order).  Random leaves are
/// treated as constants of differentiation.  src must have exactly one
/// output.
inline Circuit gradient(const Circuit& src,
                        Accumulation style = Accumulation::kBalanced) {
  assert(src.num_outputs() == 1 && "gradient expects a scalar function");
  const auto& nodes = src.nodes();
  const NodeId out_id = src.outputs()[0];

  // Replay src into q; node ids map 1:1 because push order is identical.
  Circuit q;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    switch (n.op) {
      case Op::kInput:
        q.input();
        break;
      case Op::kConst:
        q.constant(n.value);
        break;
      case Op::kRandom:
        q.random_element();
        break;
      case Op::kAdd:
        q.add(n.a, n.b);
        break;
      case Op::kSub:
        q.sub(n.a, n.b);
        break;
      case Op::kMul:
        q.mul(n.a, n.b);
        break;
      case Op::kDiv:
        q.div(n.a, n.b);
        break;
      case Op::kNeg:
        q.neg(n.a);
        break;
    }
  }

  // Signed adjoint contributions per source node.
  struct Term {
    NodeId id;
    bool negate;
  };
  std::vector<std::vector<Term>> contribs(nodes.size());
  const NodeId one = q.constant(1);
  contribs[out_id].push_back({one, false});

  // Combines a term list into a single node (or returns nullopt when empty).
  auto combine = [&](std::vector<Term>& terms) -> std::optional<NodeId> {
    if (terms.empty()) return std::nullopt;
    auto reduce = [&](std::vector<NodeId>& ids) -> std::optional<NodeId> {
      if (ids.empty()) return std::nullopt;
      if (style == Accumulation::kLinear) {
        NodeId acc = ids[0];
        for (std::size_t i = 1; i < ids.size(); ++i) acc = q.add(acc, ids[i]);
        return acc;
      }
      // Depth-weighted Huffman: always combine the two shallowest terms.
      using Entry = std::pair<std::uint32_t, NodeId>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
      for (NodeId id : ids) heap.push({q.depth_of(id), id});
      while (heap.size() > 1) {
        const auto x = heap.top();
        heap.pop();
        const auto y = heap.top();
        heap.pop();
        const NodeId s = q.add(x.second, y.second);
        heap.push({q.depth_of(s), s});
      }
      return heap.top().second;
    };
    std::vector<NodeId> pos, neg;
    for (const Term& t : terms) (t.negate ? neg : pos).push_back(t.id);
    const auto p = reduce(pos);
    const auto m = reduce(neg);
    if (p && m) return q.sub(*p, *m);
    if (p) return *p;
    return q.neg(*m);
  };

  // Reverse sweep: adjoints flow from users to operands.
  std::vector<NodeId> input_adjoint(src.num_inputs(), 0);
  std::vector<bool> input_has_adjoint(src.num_inputs(), false);
  std::size_t input_index_of = src.num_inputs();  // walk inputs back to front

  for (std::size_t i = nodes.size(); i-- > 0;) {
    const Node& n = nodes[i];
    if (n.op == Op::kInput) --input_index_of;
    auto adj = combine(contribs[i]);
    contribs[i].clear();
    contribs[i].shrink_to_fit();
    if (!adj) continue;
    switch (n.op) {
      case Op::kInput:
        input_adjoint[input_index_of] = *adj;
        input_has_adjoint[input_index_of] = true;
        break;
      case Op::kConst:
      case Op::kRandom:
        break;  // constants of differentiation
      case Op::kAdd:
        contribs[n.a].push_back({*adj, false});
        contribs[n.b].push_back({*adj, false});
        break;
      case Op::kSub:
        contribs[n.a].push_back({*adj, false});
        contribs[n.b].push_back({*adj, true});
        break;
      case Op::kNeg:
        contribs[n.a].push_back({*adj, true});
        break;
      case Op::kMul:
        contribs[n.a].push_back({q.mul(*adj, n.b), false});
        contribs[n.b].push_back({q.mul(*adj, n.a), false});
        break;
      case Op::kDiv: {
        // i = a / b: d/da = adj/b; d/db = -(adj/b) * (a/b) = -t * node_i.
        const NodeId t = q.div(*adj, n.b);
        contribs[n.a].push_back({t, false});
        contribs[n.b].push_back({q.mul(t, static_cast<NodeId>(i)), true});
        break;
      }
    }
  }

  q.mark_output(out_id);  // f itself
  const NodeId zero = q.constant(0);
  for (std::size_t k = 0; k < src.num_inputs(); ++k) {
    q.mark_output(input_has_adjoint[k] ? input_adjoint[k] : zero);
  }
  return q;
}

}  // namespace kp::circuit

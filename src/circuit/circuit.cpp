#include "circuit/circuit.h"

#include <algorithm>
#include <cassert>

namespace kp::circuit {

NodeId Circuit::push(Node n) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  return id;
}

NodeId Circuit::input() {
  const NodeId id = push({Op::kInput});
  inputs_.push_back(id);
  return id;
}

NodeId Circuit::constant(std::int64_t v) {
  if (const auto it = constant_pool_.find(v); it != constant_pool_.end()) {
    return it->second;
  }
  Node n{Op::kConst};
  n.value = v;
  const NodeId id = push(n);
  constant_pool_.emplace(v, id);
  return id;
}

NodeId Circuit::random_element() {
  const NodeId id = push({Op::kRandom});
  randoms_.push_back(id);
  return id;
}

NodeId Circuit::add(NodeId a, NodeId b) {
  assert(a < nodes_.size() && b < nodes_.size());
  Node n{Op::kAdd, a, b};
  n.depth = std::max(nodes_[a].depth, nodes_[b].depth) + 1;
  ++arithmetic_count_;
  return push(n);
}

NodeId Circuit::sub(NodeId a, NodeId b) {
  assert(a < nodes_.size() && b < nodes_.size());
  Node n{Op::kSub, a, b};
  n.depth = std::max(nodes_[a].depth, nodes_[b].depth) + 1;
  ++arithmetic_count_;
  return push(n);
}

NodeId Circuit::mul(NodeId a, NodeId b) {
  assert(a < nodes_.size() && b < nodes_.size());
  Node n{Op::kMul, a, b};
  n.depth = std::max(nodes_[a].depth, nodes_[b].depth) + 1;
  ++arithmetic_count_;
  return push(n);
}

NodeId Circuit::div(NodeId a, NodeId b) {
  assert(a < nodes_.size() && b < nodes_.size());
  Node n{Op::kDiv, a, b};
  n.depth = std::max(nodes_[a].depth, nodes_[b].depth) + 1;
  ++arithmetic_count_;
  return push(n);
}

NodeId Circuit::neg(NodeId a) {
  assert(a < nodes_.size());
  Node n{Op::kNeg, a, a};
  n.depth = nodes_[a].depth + 1;
  ++arithmetic_count_;
  return push(n);
}

std::uint32_t Circuit::depth() const {
  std::uint32_t d = 0;
  for (NodeId id : outputs_) d = std::max(d, nodes_[id].depth);
  return d;
}

}  // namespace kp::circuit

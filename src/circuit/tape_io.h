// Versioned on-disk format for compiled tapes.
//
// A serialized tape is a self-contained artifact: header + accounting,
// constant pool, slot tables, level table, instruction stream, source-node
// map, embedded self-check test vectors, and a trailing FNV-1a checksum.
// All integers are little-endian with explicit widths, so the bytes are
// identical across platforms and serialize(deserialize(bytes)) == bytes
// (round-trip byte-identity, tested in tests/test_tape.cpp).
//
// The embedded test vectors follow the ensure() idiom: add_test_vector()
// records a real evaluation over GF(modulus) at save time, ensure()
// replays every vector after load and reports kVerifyMismatch if the
// artifact no longer reproduces its own recorded behavior -- including
// recorded FAILURES (a vector with ok == false asserts the
// division-by-zero event still fires).
//
// deserialize_tape() validates structure before returning: magic, version,
// checksum, op codes, slot bounds, level-table consistency.  A corrupt or
// truncated file is a Status (kInvalidArgument at Stage::kCircuitEval),
// never UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "circuit/tape.h"
#include "circuit/tape_eval.h"
#include "field/zp.h"
#include "util/prng.h"
#include "util/status.h"

namespace kp::circuit {

inline constexpr char kTapeMagic[8] = {'K', 'P', 'T', 'A', 'P', 'E', '0', '1'};
inline constexpr std::uint32_t kTapeVersion = 1;

namespace tape_io_detail {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Bounds-checked little-endian reader; `ok` latches false on underrun and
/// every subsequent read returns 0.
struct Reader {
  const char* p = nullptr;
  std::size_t n = 0, pos = 0;
  bool ok = true;

  bool take(std::size_t k) {
    if (!ok || n - pos < k) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return static_cast<unsigned char>(p[pos++]);
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  /// Element-count sanity bound: no vector in the file may claim more
  /// entries than bytes remaining (elements are >= 1 byte each).
  std::uint32_t count() {
    const std::uint32_t c = u32();
    if (ok && c > n - pos) ok = false;
    return ok ? c : 0;
  }
};

inline void put_u64s(std::string& out, const std::vector<std::uint64_t>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (std::uint64_t x : v) put_u64(out, x);
}

inline std::vector<std::uint64_t> get_u64s(Reader& r) {
  const std::uint32_t c = r.count();
  std::vector<std::uint64_t> v;
  v.reserve(c);
  for (std::uint32_t i = 0; i < c && r.ok; ++i) v.push_back(r.u64());
  return v;
}

}  // namespace tape_io_detail

/// Encodes the tape into its canonical byte string.
inline std::string serialize_tape(const Tape& t) {
  namespace d = tape_io_detail;
  std::string out;
  out.append(kTapeMagic, sizeof(kTapeMagic));
  d::put_u32(out, kTapeVersion);
  d::put_u64(out, t.source_size);
  d::put_u32(out, t.source_depth);
  d::put_u64(out, t.source_nodes);
  d::put_u32(out, t.num_regs);

  d::put_u32(out, static_cast<std::uint32_t>(t.constants.size()));
  for (std::size_t k = 0; k < t.constants.size(); ++k) {
    d::put_i64(out, t.constants[k]);
    d::put_u32(out, t.constant_slots[k]);
  }
  const auto put_slots = [&](const std::vector<std::uint32_t>& v) {
    d::put_u32(out, static_cast<std::uint32_t>(v.size()));
    for (std::uint32_t s : v) d::put_u32(out, s);
  };
  put_slots(t.input_slots);
  put_slots(t.random_slots);
  put_slots(t.output_slots);

  d::put_u32(out, static_cast<std::uint32_t>(t.levels.size()));
  for (const TapeLevel& lv : t.levels) {
    d::put_u32(out, lv.first);
    d::put_u32(out, lv.count);
    d::put_u32(out, lv.divs);
  }
  d::put_u32(out, static_cast<std::uint32_t>(t.instrs.size()));
  for (const TapeInstr& in : t.instrs) {
    d::put_u8(out, static_cast<std::uint8_t>(in.op));
    d::put_u32(out, in.dst);
    d::put_u32(out, in.a);
    d::put_u32(out, in.b);
  }
  for (NodeId id : t.instr_nodes) d::put_u32(out, id);

  d::put_u32(out, static_cast<std::uint32_t>(t.tests.size()));
  for (const TestVector& tv : t.tests) {
    d::put_u64(out, tv.modulus);
    d::put_u8(out, tv.ok ? 1 : 0);
    d::put_u64s(out, tv.inputs);
    d::put_u64s(out, tv.randoms);
    d::put_u64s(out, tv.outputs);
  }

  d::put_u64(out, d::fnv1a(out.data(), out.size()));
  return out;
}

/// Decodes and validates a serialized tape.
inline kp::util::StatusOr<Tape> deserialize_tape(const std::string& bytes) {
  namespace d = tape_io_detail;
  const auto bad = [](const char* what) {
    return kp::util::Status::Fail(kp::util::FailureKind::kInvalidArgument,
                                  kp::util::Stage::kCircuitEval,
                                  std::string("tape: ") + what);
  };
  if (bytes.size() < sizeof(kTapeMagic) + 4 + 8 ||
      std::memcmp(bytes.data(), kTapeMagic, sizeof(kTapeMagic)) != 0) {
    return bad("bad magic");
  }
  const std::size_t body = bytes.size() - 8;
  const std::uint64_t want = d::fnv1a(bytes.data(), body);
  d::Reader tail{bytes.data(), bytes.size(), body};
  if (tail.u64() != want) return bad("checksum mismatch");

  d::Reader r{bytes.data(), body, sizeof(kTapeMagic)};
  if (r.u32() != kTapeVersion) return bad("unsupported version");

  Tape t;
  t.source_size = r.u64();
  t.source_depth = r.u32();
  t.source_nodes = r.u64();
  t.num_regs = r.u32();

  const std::uint32_t nconst = r.count();
  for (std::uint32_t k = 0; k < nconst && r.ok; ++k) {
    t.constants.push_back(r.i64());
    t.constant_slots.push_back(r.u32());
  }
  const auto get_slots = [&](std::vector<std::uint32_t>& v) {
    const std::uint32_t c = r.count();
    for (std::uint32_t k = 0; k < c && r.ok; ++k) v.push_back(r.u32());
  };
  get_slots(t.input_slots);
  get_slots(t.random_slots);
  get_slots(t.output_slots);

  const std::uint32_t nlevels = r.count();
  for (std::uint32_t k = 0; k < nlevels && r.ok; ++k) {
    TapeLevel lv;
    lv.first = r.u32();
    lv.count = r.u32();
    lv.divs = r.u32();
    t.levels.push_back(lv);
  }
  const std::uint32_t ninstr = r.count();
  for (std::uint32_t k = 0; k < ninstr && r.ok; ++k) {
    TapeInstr in;
    in.op = static_cast<Op>(r.u8());
    in.dst = r.u32();
    in.a = r.u32();
    in.b = r.u32();
    t.instrs.push_back(in);
  }
  for (std::uint32_t k = 0; k < ninstr && r.ok; ++k) {
    t.instr_nodes.push_back(r.u32());
  }

  const std::uint32_t ntests = r.count();
  for (std::uint32_t k = 0; k < ntests && r.ok; ++k) {
    TestVector tv;
    tv.modulus = r.u64();
    tv.ok = r.u8() != 0;
    tv.inputs = d::get_u64s(r);
    tv.randoms = d::get_u64s(r);
    tv.outputs = d::get_u64s(r);
    t.tests.push_back(std::move(tv));
  }
  if (!r.ok) return bad("truncated");
  if (r.pos != body) return bad("trailing bytes");

  // Structural validation: every slot in range, the instruction stream
  // exactly covered by the level table, div counts honest, ops arithmetic.
  const auto slot_ok = [&](std::uint32_t s) { return s < t.num_regs; };
  for (std::uint32_t s : t.constant_slots) {
    if (!slot_ok(s)) return bad("constant slot out of range");
  }
  for (std::uint32_t s : t.input_slots) {
    if (s != kNoSlot && !slot_ok(s)) return bad("input slot out of range");
  }
  for (std::uint32_t s : t.random_slots) {
    if (s != kNoSlot && !slot_ok(s)) return bad("random slot out of range");
  }
  for (std::uint32_t s : t.output_slots) {
    if (!slot_ok(s)) return bad("output slot out of range");
  }
  std::uint32_t next = 0;
  for (const TapeLevel& lv : t.levels) {
    if (lv.first != next || lv.divs > lv.count) return bad("level table");
    if (lv.count > ninstr - lv.first) return bad("level table");
    for (std::uint32_t k = 0; k < lv.count; ++k) {
      const TapeInstr& in = t.instrs[lv.first + k];
      if (in.op != Op::kAdd && in.op != Op::kSub && in.op != Op::kMul &&
          in.op != Op::kDiv && in.op != Op::kNeg) {
        return bad("non-arithmetic op");
      }
      if ((in.op == Op::kDiv) != (k >= lv.count - lv.divs)) {
        return bad("div placement");
      }
      if (!slot_ok(in.dst) || !slot_ok(in.a) || !slot_ok(in.b)) {
        return bad("instr slot out of range");
      }
    }
    next += lv.count;
  }
  if (next != ninstr) return bad("instrs outside levels");
  return t;
}

/// Records a real evaluation over GF(modulus) with inputs/randoms drawn
/// from `prng` as an embedded self-check.  Failed evaluations (the
/// division-by-zero event) are recorded too, with ok == false.
inline kp::util::Status add_test_vector(Tape& t, std::uint64_t modulus,
                                        kp::util::Prng& prng) {
  if (modulus < 2 || modulus >= (1ULL << 63)) {
    return kp::util::Status::Fail(kp::util::FailureKind::kInvalidArgument,
                                  kp::util::Stage::kCircuitEval,
                                  "test vector modulus out of range");
  }
  const kp::field::GFp f(modulus);
  TestVector tv;
  tv.modulus = modulus;
  std::vector<std::vector<std::uint64_t>> in(t.input_slots.size());
  std::vector<std::vector<std::uint64_t>> rnd(t.random_slots.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    tv.inputs.push_back(f.random(prng));
    in[j] = {tv.inputs.back()};
  }
  for (std::size_t j = 0; j < rnd.size(); ++j) {
    tv.randoms.push_back(f.random(prng));
    rnd[j] = {tv.randoms.back()};
  }
  const TapeEvaluator<kp::field::GFp> eval(f, t);
  const auto res = eval.evaluate(in, rnd);
  if (res.status.ok()) {
    tv.ok = true;
    for (const auto& lanes : res.outputs) tv.outputs.push_back(lanes[0]);
  } else if (res.status.kind() == kp::util::FailureKind::kDivisionByZero) {
    tv.ok = false;
  } else {
    return res.status;
  }
  t.tests.push_back(std::move(tv));
  return kp::util::Status::Ok();
}

/// Replays every embedded test vector: a loaded artifact must reproduce
/// its recorded outputs (and its recorded failures).  First mismatch is
/// reported as kVerifyMismatch.
inline kp::util::Status ensure(const Tape& t) {
  for (std::size_t k = 0; k < t.tests.size(); ++k) {
    const TestVector& tv = t.tests[k];
    const auto mismatch = [&](const char* what) {
      return kp::util::Status::Fail(
          kp::util::FailureKind::kVerifyMismatch, kp::util::Stage::kCircuitEval,
          "test vector " + std::to_string(k) + ": " + what);
    };
    if (tv.modulus < 2 || tv.modulus >= (1ULL << 63) ||
        tv.inputs.size() != t.input_slots.size() ||
        tv.randoms.size() != t.random_slots.size()) {
      return mismatch("malformed");
    }
    const kp::field::GFp f(tv.modulus);
    for (std::uint64_t v : tv.inputs) {
      if (v >= tv.modulus) return mismatch("non-canonical input");
    }
    for (std::uint64_t v : tv.randoms) {
      if (v >= tv.modulus) return mismatch("non-canonical random");
    }
    std::vector<std::vector<std::uint64_t>> in, rnd;
    for (std::uint64_t v : tv.inputs) in.push_back({v});
    for (std::uint64_t v : tv.randoms) rnd.push_back({v});
    const TapeEvaluator<kp::field::GFp> eval(f, t);
    const auto res = eval.evaluate(in, rnd);
    if (tv.ok) {
      if (!res.status.ok()) return mismatch("recorded success now fails");
      if (tv.outputs.size() != res.outputs.size()) {
        return mismatch("output arity changed");
      }
      for (std::size_t j = 0; j < tv.outputs.size(); ++j) {
        if (res.outputs[j][0] != tv.outputs[j]) {
          return mismatch("output value changed");
        }
      }
    } else {
      if (res.status.kind() != kp::util::FailureKind::kDivisionByZero) {
        return mismatch("recorded failure no longer reproduces");
      }
    }
  }
  return kp::util::Status::Ok();
}

/// Writes serialize_tape(t) to `path`.
inline kp::util::Status save_tape(const Tape& t, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return kp::util::Status::Fail(kp::util::FailureKind::kInvalidArgument,
                                  kp::util::Stage::kCircuitEval,
                                  "cannot open " + path);
  }
  const std::string bytes = serialize_tape(t);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) {
    return kp::util::Status::Fail(kp::util::FailureKind::kInvalidArgument,
                                  kp::util::Stage::kCircuitEval,
                                  "write failed: " + path);
  }
  return kp::util::Status::Ok();
}

/// Reads, validates, and decodes a tape file.
inline kp::util::StatusOr<Tape> load_tape(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    return kp::util::Status::Fail(kp::util::FailureKind::kInvalidArgument,
                                  kp::util::Stage::kCircuitEval,
                                  "cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return deserialize_tape(bytes);
}

}  // namespace kp::circuit

// Algebraic circuits (straight-line programs) -- the paper's machine model.
//
// A circuit is a DAG of +, -, *, /, negation nodes over input, constant and
// random-element leaves.  The two complexity measures of every theorem in
// the paper are exactly this module's size() (number of arithmetic nodes)
// and depth() (longest path of arithmetic nodes), and the "division by
// zero" failure event of Theorems 4 and 6 is what evaluate() reports.
//
// Circuits are built either directly through the node factories here or --
// the way the Theorem-4/6 circuits are realized -- by running the generic
// pipeline over the symbolic CircuitBuilderField (circuit/field.h).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "field/concepts.h"
#include "util/fault.h"
#include "util/status.h"

namespace kp::circuit {

enum class Op : std::uint8_t {
  kInput,   ///< leaf: formal input (e.g. a matrix entry)
  kConst,   ///< leaf: integer constant, materialized via F::from_int
  kRandom,  ///< leaf: random field element drawn from the sample set S
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
};

using NodeId = std::uint32_t;

struct Node {
  Op op;
  NodeId a = 0, b = 0;        ///< operand ids (a only, for kNeg)
  std::int64_t value = 0;     ///< payload for kConst
  std::uint32_t depth = 0;    ///< arithmetic nodes on the longest path to a leaf
};

/// Append-only circuit arena.  Nodes are topologically ordered by id.
/// Identical constant() values are pooled: the first call appends a node,
/// later calls return the existing id (constants are leaves, so size() --
/// the paper's arithmetic-node count -- is unaffected; see DESIGN.md §11).
class Circuit {
 public:
  NodeId input();
  NodeId constant(std::int64_t v);
  NodeId random_element();
  NodeId add(NodeId a, NodeId b);
  NodeId sub(NodeId a, NodeId b);
  NodeId mul(NodeId a, NodeId b);
  NodeId div(NodeId a, NodeId b);
  NodeId neg(NodeId a);

  void mark_output(NodeId id) { outputs_.push_back(id); }
  void clear_outputs() { outputs_.clear(); }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& randoms() const { return randoms_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Number of arithmetic nodes (the paper's circuit size l).
  std::size_t size() const { return arithmetic_count_; }
  /// Total nodes including leaves.
  std::size_t total_nodes() const { return nodes_.size(); }
  /// Longest arithmetic path feeding any output (the paper's depth d).
  std::uint32_t depth() const;
  /// Depth of one node.
  std::uint32_t depth_of(NodeId id) const { return nodes_[id].depth; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_randoms() const { return randoms_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  /// Result of an evaluation: ok == false reports the division-by-zero
  /// failure event (unlucky randoms or a singular input, Theorem 4).
  template <class F>
  struct Eval {
    bool ok = false;
    std::vector<typename F::Element> outputs;
  };

  /// Result of a Status-reporting evaluation.  On kDivisionByZero the id of
  /// the failing kDiv node is carried alongside the Status so callers can
  /// map the failure event back into the DAG (depth_of(failed_node), dot
  /// export, ...).
  template <class F>
  struct EvalResult {
    kp::util::Status status;
    std::vector<typename F::Element> outputs;
    NodeId failed_node = 0;  ///< valid iff status.kind() == kDivisionByZero
  };

  /// Evaluates the circuit over a field, one node at a time.  The failure
  /// event (a kDiv node whose divisor evaluates to zero -- unlucky randoms
  /// or a singular input, Theorem 4) is reported through the PR-4 taxonomy
  /// as kDivisionByZero at Stage::kCircuitEval with the failing NodeId.
  /// `input_values` / `random_values` must match num_inputs()/num_randoms().
  template <kp::field::Field F>
  EvalResult<F> evaluate_status(
      const F& f, const std::vector<typename F::Element>& input_values,
      const std::vector<typename F::Element>& random_values) const {
    EvalResult<F> res;
    std::vector<typename F::Element> val(nodes_.size(), f.zero());
    std::size_t next_input = 0, next_random = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      switch (n.op) {
        case Op::kInput:
          val[i] = input_values[next_input++];
          break;
        case Op::kConst:
          val[i] = f.from_int(n.value);
          break;
        case Op::kRandom:
          val[i] = random_values[next_random++];
          break;
        case Op::kAdd:
          val[i] = f.add(val[n.a], val[n.b]);
          break;
        case Op::kSub:
          val[i] = f.sub(val[n.a], val[n.b]);
          break;
        case Op::kMul:
          val[i] = f.mul(val[n.a], val[n.b]);
          break;
        case Op::kDiv: {
          const bool injected = KP_FAULT_POINT(kp::util::Stage::kCircuitEval);
          if (f.is_zero(val[n.b]) || injected) {  // the failure event
            res.failed_node = static_cast<NodeId>(i);
            res.status =
                injected
                    ? kp::util::Status::Injected(
                          kp::util::FailureKind::kDivisionByZero,
                          kp::util::Stage::kCircuitEval)
                    : kp::util::Status::Fail(
                          kp::util::FailureKind::kDivisionByZero,
                          kp::util::Stage::kCircuitEval,
                          "node " + std::to_string(i));
            return res;
          }
          val[i] = f.div(val[n.a], val[n.b]);
          break;
        }
        case Op::kNeg:
          val[i] = f.neg(val[n.a]);
          break;
      }
    }
    res.outputs.reserve(outputs_.size());
    for (NodeId id : outputs_) res.outputs.push_back(val[id]);
    return res;
  }

  /// Legacy bool-reporting evaluation -- a thin wrapper over
  /// evaluate_status() (ok == status.ok()).
  template <kp::field::Field F>
  Eval<F> evaluate(const F& f,
                   const std::vector<typename F::Element>& input_values,
                   const std::vector<typename F::Element>& random_values) const {
    auto st = evaluate_status(f, input_values, random_values);
    Eval<F> res;
    res.ok = st.status.ok();
    res.outputs = std::move(st.outputs);
    return res;
  }

 private:
  NodeId push(Node n);

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> randoms_;
  std::vector<NodeId> outputs_;
  std::unordered_map<std::int64_t, NodeId> constant_pool_;
  std::size_t arithmetic_count_ = 0;
};

}  // namespace kp::circuit

// Batched SoA evaluation of compiled tapes.
//
// TapeEvaluator<F> runs B independent evaluations of a Tape per pass in
// structure-of-arrays layout: one aligned lane-block per register slot, so
// each instruction becomes one elementwise lane kernel over B lanes
// (field/kernels.h add/sub/neg/mul lanes) and the kDiv instructions of a
// level are inverted together with Montgomery's trick -- one extended
// Euclid per (level, lane-chunk) instead of one per division per lane.
//
// Determinism contract (tested in tests/test_tape.cpp):
//   * element values are bit-identical to node-at-a-time
//     Circuit::evaluate() for every lane, at every worker count and every
//     SIMD dispatch level (canonical residues are unique; the kernels
//     reproduce the fields' exact scalar formulas);
//   * lane-chunk boundaries depend only on B (fixed kLaneGrain), never on
//     the worker count, and chunks write disjoint lane ranges, so the
//     pram::ExecutionContext dispatch satisfies the pool's determinism
//     contract and op counts fold back to the submitter identically at
//     1..N workers;
//   * the division-by-zero failure event is detected in a serial pre-scan
//     on the submitting thread (in level order, divs in node-id order,
//     lanes in lane order), so the FIRST failing (level, lane) is
//     deterministic and the KP_FAULT_POINT sites (one per div-instruction
//     lane, Stage::kCircuitEval) trigger identically at any worker count.
//
// A failed batch fails as a unit: node-at-a-time evaluation of the failing
// lane's scalar inputs reproduces the same kDivisionByZero at the node the
// Fault reports.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "circuit/tape.h"
#include "field/concepts.h"
#include "field/kernels.h"
#include "pram/parallel_for.h"
#include "util/aligned.h"
#include "util/fault.h"
#include "util/status.h"

namespace kp::circuit {

/// Lanes per dispatch chunk.  A function of nothing but this constant and
/// B, so chunk boundaries are identical for every worker count.  256 lanes
/// (32 full AVX-512 groups) amortizes the per-instruction kernel dispatch;
/// batches smaller than two grains run as a single chunk.
inline constexpr std::size_t kLaneGrain = 256;

/// Where a batch failed: the first (in level, instruction, lane order)
/// division whose divisor was zero.
struct TapeFault {
  std::uint32_t level = 0;  ///< 0-based level index
  std::uint32_t lane = 0;   ///< failing lane within the batch
  std::uint32_t instr = 0;  ///< global instruction index into Tape::instrs
  NodeId node = 0;          ///< source-circuit node (Tape::instr_nodes)
  bool injected = false;    ///< fired by util/fault.h, not a real zero
};

template <kp::field::Field F>
class TapeEvaluator {
 public:
  using Element = typename F::Element;

  /// Per-batch result.  On kDivisionByZero, `fault` identifies the failing
  /// level/lane/instruction; outputs are only populated on success.
  struct Result {
    kp::util::Status status;
    TapeFault fault;
    std::vector<std::vector<Element>> outputs;  ///< outputs[k][lane]
  };

  TapeEvaluator(const F& f, const Tape& t) : f_(f), t_(t) {}

  /// Evaluates B lanes: inputs[j][lane] is input j of evaluation `lane`
  /// (SoA), randoms likewise; every inner vector must have the same size
  /// B >= 1.  Outputs come back in the same layout.
  Result evaluate(const std::vector<std::vector<Element>>& inputs,
                  const std::vector<std::vector<Element>>& randoms) const {
    Result res;
    if (inputs.size() != t_.input_slots.size() ||
        randoms.size() != t_.random_slots.size()) {
      res.status = invalid("input/random arity mismatch");
      return res;
    }
    const std::size_t B = !inputs.empty()    ? inputs[0].size()
                          : !randoms.empty() ? randoms[0].size()
                                             : 1;
    if (B == 0) {
      res.status = invalid("empty batch");
      return res;
    }
    for (const auto& v : inputs) {
      if (v.size() != B) {
        res.status = invalid("ragged input lanes");
        return res;
      }
    }
    for (const auto& v : randoms) {
      if (v.size() != B) {
        res.status = invalid("ragged random lanes");
        return res;
      }
    }
    if constexpr (kp::field::kernels::FastField<F>) {
      run_fast(inputs, randoms, B, res);
    } else {
      run_generic(inputs, randoms, B, res);
    }
    return res;
  }

 private:
  static kp::util::Status invalid(const char* what) {
    return kp::util::Status::Fail(kp::util::FailureKind::kInvalidArgument,
                                  kp::util::Stage::kCircuitEval, what);
  }

  /// Serial divisor pre-scan of one level: runs on the submitting thread
  /// (fault-site determinism), instruction-major then lane-major, so the
  /// reported fault is the first in the same order every time.  Returns
  /// false on failure with `res` filled in.
  template <class Lanes>
  bool scan_divisors(std::size_t li, std::size_t B, Lanes&& divisor,
                     Result& res) const {
    const TapeLevel& lv = t_.levels[li];
    for (std::uint32_t k = lv.count - lv.divs; k < lv.count; ++k) {
      const std::uint32_t gi = lv.first + k;
      for (std::size_t lane = 0; lane < B; ++lane) {
        const bool injected = KP_FAULT_POINT(kp::util::Stage::kCircuitEval);
        if (f_.is_zero(divisor(gi, lane)) || injected) {
          res.fault.level = static_cast<std::uint32_t>(li);
          res.fault.lane = static_cast<std::uint32_t>(lane);
          res.fault.instr = gi;
          res.fault.node = t_.instr_nodes[gi];
          res.fault.injected = injected;
          res.status =
              injected
                  ? kp::util::Status::Injected(
                        kp::util::FailureKind::kDivisionByZero,
                        kp::util::Stage::kCircuitEval)
                  : kp::util::Status::Fail(
                        kp::util::FailureKind::kDivisionByZero,
                        kp::util::Stage::kCircuitEval,
                        "level " + std::to_string(li) + " lane " +
                            std::to_string(lane) + " node " +
                            std::to_string(t_.instr_nodes[gi]));
          return false;
        }
      }
    }
    return true;
  }

  /// Word-sized canonical fields: SoA register file, SIMD lane kernels,
  /// chunked pool dispatch.
  void run_fast(const std::vector<std::vector<Element>>& inputs,
                const std::vector<std::vector<Element>>& randoms,
                std::size_t B, Result& res) const {
    namespace kn = kp::field::kernels;
    // Lane stride: B rounded up to a full 8-lane group, so every slot
    // block starts 64-byte aligned.
    const std::size_t pad = (B + 7) & ~static_cast<std::size_t>(7);
    kp::util::AlignedVector<std::uint64_t> regs(
        static_cast<std::size_t>(t_.num_regs) * pad, 0);
    const auto rp = [&](std::uint32_t s) {
      return regs.data() + static_cast<std::size_t>(s) * pad;
    };

    // Leaf loads.
    for (std::size_t k = 0; k < t_.constants.size(); ++k) {
      const std::uint64_t v = f_.from_int(t_.constants[k]);
      std::uint64_t* dst = rp(t_.constant_slots[k]);
      for (std::size_t lane = 0; lane < B; ++lane) dst[lane] = v;
    }
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (t_.input_slots[j] == kNoSlot) continue;
      std::memcpy(rp(t_.input_slots[j]), inputs[j].data(),
                  B * sizeof(std::uint64_t));
    }
    for (std::size_t j = 0; j < randoms.size(); ++j) {
      if (t_.random_slots[j] == kNoSlot) continue;
      std::memcpy(rp(t_.random_slots[j]), randoms[j].data(),
                  B * sizeof(std::uint64_t));
    }

    // Chunk plan (worker-count independent) and the per-chunk divisor
    // scratch: chunk c owns scratch [c * divs_max * kLaneGrain, ...), so
    // chunks never share cache lines of the inversion buffer.
    const std::size_t nchunks = (B + kLaneGrain - 1) / kLaneGrain;
    std::uint32_t divs_max = 0;
    for (const TapeLevel& lv : t_.levels) divs_max = std::max(divs_max, lv.divs);
    kp::util::AlignedVector<std::uint64_t> scratch(
        static_cast<std::size_t>(divs_max) * nchunks * kLaneGrain);

    for (std::size_t li = 0; li < t_.levels.size(); ++li) {
      const TapeLevel& lv = t_.levels[li];
      if (!scan_divisors(
              li, B,
              [&](std::uint32_t gi, std::size_t lane) {
                return rp(t_.instrs[gi].b)[lane];
              },
              res)) {
        return;
      }
      const TapeInstr* ins = t_.instrs.data() + lv.first;
      const std::uint32_t nd = lv.count - lv.divs;
      const auto run_chunk = [&](std::size_t c) {
        const std::size_t l0 = c * kLaneGrain;
        const std::size_t len = std::min(kLaneGrain, B - l0);
        for (std::uint32_t k = 0; k < nd; ++k) {
          const TapeInstr& in = ins[k];
          switch (in.op) {
            case Op::kAdd:
              kn::add_lanes(f_, rp(in.a) + l0, rp(in.b) + l0, rp(in.dst) + l0,
                            len);
              break;
            case Op::kSub:
              kn::sub_lanes(f_, rp(in.a) + l0, rp(in.b) + l0, rp(in.dst) + l0,
                            len);
              break;
            case Op::kMul:
              kn::mul_lanes(f_, rp(in.a) + l0, rp(in.b) + l0, rp(in.dst) + l0,
                            len);
              break;
            case Op::kNeg:
              kn::neg_lanes(f_, rp(in.a) + l0, rp(in.dst) + l0, len);
              break;
            default:
              break;
          }
        }
        if (lv.divs > 0) {
          // Montgomery trick across every division of the level at once:
          // gather the (pre-scanned, nonzero) divisors, ONE batched
          // inversion, then the uncounted numerator multiply -- the same
          // n-divisions price and the same unique field inverses as n
          // calls to f.div().
          std::uint64_t* sc =
              scratch.data() + c * static_cast<std::size_t>(divs_max) *
                                   kLaneGrain;
          for (std::uint32_t d = 0; d < lv.divs; ++d) {
            std::memcpy(sc + static_cast<std::size_t>(d) * len,
                        rp(ins[nd + d].b) + l0, len * sizeof(std::uint64_t));
          }
          (void)kn::batch_inverse(f_, sc,
                                  static_cast<std::size_t>(lv.divs) * len);
          for (std::uint32_t d = 0; d < lv.divs; ++d) {
            kn::mul_lanes_uncounted(f_, rp(ins[nd + d].a) + l0,
                                    sc + static_cast<std::size_t>(d) * len,
                                    rp(ins[nd + d].dst) + l0, len);
          }
        }
      };
      if (nchunks > 1 && lv.count > 0) {
        kp::pram::parallel_for(0, nchunks, run_chunk);
      } else if (lv.count > 0) {
        run_chunk(0);
      }
    }

    res.outputs.resize(t_.output_slots.size());
    for (std::size_t k = 0; k < t_.output_slots.size(); ++k) {
      const std::uint64_t* src = rp(t_.output_slots[k]);
      res.outputs[k].assign(src, src + B);
    }
  }

  /// Generic fields (extension fields, symbolic domains): same tape walk,
  /// element-at-a-time, serial.  Charges exactly what node-at-a-time
  /// evaluation charges per live node per lane.
  void run_generic(const std::vector<std::vector<Element>>& inputs,
                   const std::vector<std::vector<Element>>& randoms,
                   std::size_t B, Result& res) const {
    std::vector<Element> regs(static_cast<std::size_t>(t_.num_regs) * B,
                              f_.zero());
    const auto at = [&](std::uint32_t s, std::size_t lane) -> Element& {
      return regs[static_cast<std::size_t>(s) * B + lane];
    };
    for (std::size_t k = 0; k < t_.constants.size(); ++k) {
      const Element v = f_.from_int(t_.constants[k]);
      for (std::size_t lane = 0; lane < B; ++lane) {
        at(t_.constant_slots[k], lane) = v;
      }
    }
    for (std::size_t j = 0; j < inputs.size(); ++j) {
      if (t_.input_slots[j] == kNoSlot) continue;
      for (std::size_t lane = 0; lane < B; ++lane) {
        at(t_.input_slots[j], lane) = inputs[j][lane];
      }
    }
    for (std::size_t j = 0; j < randoms.size(); ++j) {
      if (t_.random_slots[j] == kNoSlot) continue;
      for (std::size_t lane = 0; lane < B; ++lane) {
        at(t_.random_slots[j], lane) = randoms[j][lane];
      }
    }

    for (std::size_t li = 0; li < t_.levels.size(); ++li) {
      const TapeLevel& lv = t_.levels[li];
      if (!scan_divisors(
              li, B,
              [&](std::uint32_t gi, std::size_t lane) -> const Element& {
                return at(t_.instrs[gi].b, lane);
              },
              res)) {
        return;
      }
      for (std::uint32_t k = 0; k < lv.count; ++k) {
        const TapeInstr& in = t_.instrs[lv.first + k];
        for (std::size_t lane = 0; lane < B; ++lane) {
          switch (in.op) {
            case Op::kAdd:
              at(in.dst, lane) = f_.add(at(in.a, lane), at(in.b, lane));
              break;
            case Op::kSub:
              at(in.dst, lane) = f_.sub(at(in.a, lane), at(in.b, lane));
              break;
            case Op::kMul:
              at(in.dst, lane) = f_.mul(at(in.a, lane), at(in.b, lane));
              break;
            case Op::kDiv:
              at(in.dst, lane) = f_.div(at(in.a, lane), at(in.b, lane));
              break;
            case Op::kNeg:
              at(in.dst, lane) = f_.neg(at(in.a, lane));
              break;
            default:
              break;
          }
        }
      }
    }

    res.outputs.resize(t_.output_slots.size());
    for (std::size_t k = 0; k < t_.output_slots.size(); ++k) {
      res.outputs[k].reserve(B);
      for (std::size_t lane = 0; lane < B; ++lane) {
        res.outputs[k].push_back(at(t_.output_slots[k], lane));
      }
    }
  }

  const F& f_;
  const Tape& t_;
};

}  // namespace kp::circuit

// Builders for the paper's circuits.
//
// Each builder runs the generic pipeline over the symbolic
// CircuitBuilderField, so the returned Circuit *is* the randomized algebraic
// circuit whose size/depth/randomness Theorems 4 and 6 bound:
//
//   * build_solver_circuit     -- Theorem 4: inputs (A, b), outputs A^{-1}b.
//   * build_det_circuit        -- the auxiliary determinant circuit.
//   * build_inverse_circuit    -- Theorem 6: gradient of the det circuit,
//                                 A^{-1} = (d det/d a_ji) / det.
//   * build_transposed_solver_circuit -- the section-4 application: from a
//                                 solver circuit, a circuit for (A^T)^{-1} b
//                                 at 4x length and O(1)x depth.
//   * build_matmul_circuit / build_toeplitz_charpoly_circuit -- corpus
//                                 pieces for the E5/E7 experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/derivative.h"
#include "circuit/field.h"
#include "circuit/tape.h"
#include "core/solver.h"
#include "matrix/dense.h"
#include "matrix/structured.h"
#include "seq/newton_toeplitz.h"
#include "util/prng.h"

namespace kp::circuit {

namespace detail {

/// n x n matrix of fresh input nodes, row-major (the input order contract
/// of every builder below).
inline matrix::Matrix<CircuitBuilderField> input_matrix(
    const CircuitBuilderField& cf, std::size_t rows, std::size_t cols) {
  matrix::Matrix<CircuitBuilderField> a(rows, cols, cf.zero());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a.at(i, j) = cf.circuit().input();
  }
  return a;
}

inline std::vector<NodeId> input_vector(const CircuitBuilderField& cf,
                                        std::size_t n) {
  std::vector<NodeId> v(n);
  for (auto& e : v) e = cf.circuit().input();
  return v;
}

/// Solver options for circuit building: single attempt, no Las Vegas
/// verification (the circuit is straight-line), depth-optimal finishes.
inline core::SolverOptions circuit_options() {
  core::SolverOptions opt;
  opt.max_attempts = 1;
  opt.verify = false;
  opt.depth_optimal = true;
  opt.newton = seq::NewtonIdentityMethod::kPowerSeriesExp;
  return opt;
}

}  // namespace detail

/// Theorem 4: circuit with n^2 + n inputs (A row-major, then b), n outputs
/// (the entries of A^{-1} b), and O(n) random nodes.
inline Circuit build_solver_circuit(std::size_t n,
                                    std::uint64_t characteristic = 0) {
  Circuit c;
  CircuitBuilderField cf(c, characteristic);
  const auto a = detail::input_matrix(cf, n, n);
  const auto b = detail::input_vector(cf, n);
  kp::util::Prng prng(0);  // never consumed: random() makes kRandom leaves
  const auto res = core::kp_solve(cf, a, b, prng, detail::circuit_options());
  for (NodeId id : res.x) c.mark_output(id);
  return c;
}

/// The determinant circuit underlying Theorem 6: n^2 inputs, 1 output
/// det(A), O(n) random nodes.
inline Circuit build_det_circuit(std::size_t n,
                                 std::uint64_t characteristic = 0) {
  Circuit c;
  CircuitBuilderField cf(c, characteristic);
  const auto a = detail::input_matrix(cf, n, n);
  kp::util::Prng prng(0);
  const auto res = core::kp_det(cf, a, prng, detail::circuit_options());
  c.mark_output(res.det);
  return c;
}

/// Theorem 6: the inverse circuit, obtained by differentiating the
/// determinant circuit (Theorem 5) and dividing by the determinant:
///   (A^{-1})_{ij} = (d det / d a_{ji}) / det.
/// n^2 inputs, n^2 outputs (row-major A^{-1}).
inline Circuit build_inverse_circuit(std::size_t n,
                                     std::uint64_t characteristic = 0,
                                     Accumulation style = Accumulation::kBalanced) {
  Circuit det = build_det_circuit(n, characteristic);
  Circuit grad = gradient(det, style);  // outputs: [det, d det/d a_00, ...]
  const auto outs = grad.outputs();     // copy: we re-mark below
  const NodeId det_node = outs[0];
  grad.clear_outputs();
  // Gradient outputs follow the input (row-major) order of A; the inverse
  // needs the TRANSPOSED cofactor: (A^{-1})_{ij} = (d det / d a_{ji}) / det.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const NodeId d_ji = outs[1 + j * n + i];
      grad.mark_output(grad.div(d_ji, det_node));
    }
  }
  return grad;
}

/// Section 4: from the Theorem-4 solver circuit, a circuit for the
/// TRANSPOSED system (A^T)^{-1} b.  Construction: f(x) = b^T (A^{-1} x) is
/// computed with the given circuit plus one inner product; its gradient in
/// x is (A^{-1})^T b = (A^T)^{-1} b.  Inputs: A (row-major), then b.
inline Circuit build_transposed_solver_circuit(
    std::size_t n, std::uint64_t characteristic = 0,
    Accumulation style = Accumulation::kBalanced) {
  Circuit c;
  CircuitBuilderField cf(c, characteristic);
  const auto a = detail::input_matrix(cf, n, n);
  // x: the differentiation variables (solver's right-hand side).
  const auto x = detail::input_vector(cf, n);
  kp::util::Prng prng(0);
  const auto res = core::kp_solve(cf, a, x, prng, detail::circuit_options());
  // b enters only linearly, as coefficients of the inner product.
  const auto b = detail::input_vector(cf, n);
  const NodeId fval = matrix::dot(cf, b, res.x);
  c.mark_output(fval);

  Circuit grad = gradient(c, style);
  // Keep only the gradients w.r.t. x (input slots n^2 .. n^2+n-1).
  const auto outs = grad.outputs();
  grad.clear_outputs();
  for (std::size_t i = 0; i < n; ++i) {
    grad.mark_output(outs[1 + n * n + i]);
  }
  return grad;
}

/// Classical n^3 matrix-product circuit: inputs A then B (row-major),
/// outputs A*B row-major.  Corpus piece for the derivative experiments.
inline Circuit build_matmul_circuit(std::size_t n) {
  Circuit c;
  CircuitBuilderField cf(c);
  const auto a = detail::input_matrix(cf, n, n);
  const auto b = detail::input_matrix(cf, n, n);
  const auto prod = matrix::mat_mul(cf, a, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) c.mark_output(prod.at(i, j));
  }
  return c;
}

/// Theorem-3 circuit: inputs are the 2n-1 diagonals of a Toeplitz matrix,
/// outputs the n+1 coefficients of its characteristic polynomial.
inline Circuit build_toeplitz_charpoly_circuit(std::size_t n,
                                               std::uint64_t characteristic = 0) {
  Circuit c;
  CircuitBuilderField cf(c, characteristic);
  const auto diag = detail::input_vector(cf, 2 * n - 1);
  matrix::Toeplitz<CircuitBuilderField> t(n, diag);
  const auto p =
      seq::toeplitz_charpoly(cf, t, seq::NewtonIdentityMethod::kPowerSeriesExp);
  for (NodeId id : p) c.mark_output(id);
  return c;
}

// ---------------------------------------------------------------------------
// Compiled forms.  Building is a one-off cost; callers that evaluate the
// same circuit many times (benches, the batch evaluator, saved artifacts)
// go through these and keep the DAG only as the checked reference.

/// Theorem-4 solver, compiled (circuit/tape.h).
inline Tape build_solver_tape(std::size_t n,
                              std::uint64_t characteristic = 0) {
  return compile(build_solver_circuit(n, characteristic));
}

/// Theorem-6 inverse, compiled.
inline Tape build_inverse_tape(std::size_t n, std::uint64_t characteristic = 0,
                               Accumulation style = Accumulation::kBalanced) {
  return compile(build_inverse_circuit(n, characteristic, style));
}

/// Theorem-3 Toeplitz charpoly, compiled.
inline Tape build_toeplitz_charpoly_tape(std::size_t n,
                                         std::uint64_t characteristic = 0) {
  return compile(build_toeplitz_charpoly_circuit(n, characteristic));
}

}  // namespace kp::circuit

// CircuitBuilderField: a symbolic "field" whose elements are circuit nodes.
//
// This is how the library realizes the paper's circuits without writing the
// pipeline twice: CircuitBuilderField satisfies the same Field concept as
// Z/pZ or Q, so running kp_det / toeplitz_charpoly / krylov_block over it
// *records* every arithmetic operation into a Circuit.  The recorded object
// is exactly the randomized algebraic circuit of Theorems 4 and 6: inputs
// are the matrix/vector entries, kRandom leaves are the O(n) random
// elements, and unlucky evaluations divide by zero.
//
// Zero tests are resolved conservatively (a node is "zero" only when it is a
// literal zero constant), which matches the paper's model: the algorithms
// realize straight-line programs with NO data-dependent zero tests.
// Constant folding and the algebraic peepholes (x+0, x*1, x*0, ...) keep the
// recorded circuit close to what a hand construction would produce.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

#include "circuit/circuit.h"
#include "poly/poly.h"
#include "util/prng.h"

namespace kp::circuit {

class CircuitBuilderField {
 public:
  using Element = NodeId;

  /// Recording mutates the shared Circuit arena and node ids depend on
  /// creation order, so the parallel kernels must run this domain serially
  /// (see kp::field::concurrent_ops_v).
  static constexpr bool kSequentialOnly = true;

  /// `characteristic` is the characteristic of the field the circuit will
  /// be evaluated over; it gates the Leverrier precondition exactly as for
  /// a concrete field.
  explicit CircuitBuilderField(Circuit& c, std::uint64_t characteristic = 0)
      : c_(&c), characteristic_(characteristic) {
    zero_ = c_->constant(0);
    one_ = c_->constant(1);
  }

  Element zero() const { return zero_; }
  Element one() const { return one_; }

  Element add(Element a, Element b) const {
    if (a == zero_) return b;
    if (b == zero_) return a;
    if (auto folded = fold2(a, b, [](std::int64_t x, std::int64_t y) { return x + y; })) {
      return *folded;
    }
    return c_->add(a, b);
  }
  Element sub(Element a, Element b) const {
    if (b == zero_) return a;
    if (a == zero_) return neg(b);
    if (a == b) return zero_;
    if (auto folded = fold2(a, b, [](std::int64_t x, std::int64_t y) { return x - y; })) {
      return *folded;
    }
    return c_->sub(a, b);
  }
  Element neg(Element a) const {
    if (a == zero_) return zero_;
    if (is_const(a)) return c_->constant(-const_of(a));
    return c_->neg(a);
  }
  Element mul(Element a, Element b) const {
    if (a == zero_ || b == zero_) return zero_;
    if (a == one_) return b;
    if (b == one_) return a;
    if (auto folded = fold2(a, b, [](std::int64_t x, std::int64_t y) { return x * y; })) {
      return *folded;
    }
    return c_->mul(a, b);
  }
  Element inv(Element a) const { return div(one_, a); }
  Element div(Element a, Element b) const {
    if (b == one_) return a;
    if (a == zero_ && b != zero_) return zero_;
    return c_->div(a, b);
  }

  /// Conservative symbolic zero test: only literal zero is zero.  This keeps
  /// the recorded program straight-line (the paper's "no zero-tests").
  bool is_zero(Element a) const { return is_const(a) && const_of(a) == 0; }
  bool eq(Element a, Element b) const {
    if (a == b) return true;
    return is_const(a) && is_const(b) && const_of(a) == const_of(b);
  }

  Element from_int(std::int64_t v) const {
    if (v == 0) return zero_;
    if (v == 1) return one_;
    return c_->constant(v);
  }
  /// A fresh random-element leaf: running a randomized algorithm over this
  /// field materializes its O(n) random nodes.
  Element random(kp::util::Prng&) const { return c_->random_element(); }
  Element sample(kp::util::Prng&, std::uint64_t) const {
    return c_->random_element();
  }

  std::uint64_t characteristic() const { return characteristic_; }
  std::uint64_t cardinality() const { return 0; }
  std::string to_string(Element a) const { return "#" + std::to_string(a); }

  Circuit& circuit() const { return *c_; }

 private:
  bool is_const(Element a) const { return c_->nodes()[a].op == Op::kConst; }
  std::int64_t const_of(Element a) const { return c_->nodes()[a].value; }

  template <class Fn>
  std::optional<Element> fold2(Element a, Element b, Fn&& fn) const {
    if (!is_const(a) || !is_const(b)) return std::nullopt;
    // Fold only when safely in range (constants stay small in practice).
    const std::int64_t x = const_of(a), y = const_of(b);
    if (x > -(1LL << 30) && x < (1LL << 30) && y > -(1LL << 30) && y < (1LL << 30)) {
      return from_int(fn(x, y));
    }
    return std::nullopt;
  }

  Circuit* c_;
  std::uint64_t characteristic_;
  Element zero_, one_;
};

}  // namespace kp::circuit

namespace kp::poly {

/// Symbolic NTT: when the circuit's TARGET field is a prime field with
/// enough 2-adic roots of unity, polynomial products inside recorded
/// circuits use the generic NTT (roots injected as constants).  This is
/// what keeps the recorded Theorem-3/4 circuits at the paper's
/// O(n^2 polylog) / O(n^omega log n) sizes rather than Karatsuba's
/// exponent-1.58 blowup per layer.
template <>
struct NttTraits<kp::circuit::CircuitBuilderField> {
  using CF = kp::circuit::CircuitBuilderField;
  static constexpr bool kSupported = true;
  static bool available(const CF& cf, std::size_t out_len) {
    const std::uint64_t p = cf.characteristic();
    if (p < 3) return false;
    std::size_t n = 1;
    int log_n = 0;
    while (n < out_len) {
      n <<= 1;
      ++log_n;
    }
    return log_n <= detail::two_adicity(p);
  }
  static std::vector<typename CF::Element> mul(
      const CF& cf, const std::vector<typename CF::Element>& a,
      const std::vector<typename CF::Element>& b) {
    return ntt_mul_prime_field(cf, a, b);
  }
};

}  // namespace kp::poly

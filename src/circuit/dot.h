// Graphviz export of algebraic circuits.
//
// Small circuits (the Figure-2/3 scale of the paper) render nicely with
// `dot -Tsvg`; for large pipelines use the statistics in Circuit directly.
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace kp::circuit {

/// Renders the circuit in Graphviz dot syntax.  Leaves are boxes (inputs
/// labelled x0.., constants by value, randoms r0..), arithmetic nodes are
/// ellipses labelled with their operator, outputs are double circles.
inline std::string to_dot(const Circuit& c, const std::string& name = "circuit") {
  std::string out = "digraph " + name + " {\n  rankdir=BT;\n";
  std::size_t input_idx = 0, random_idx = 0;
  const auto& nodes = c.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    const std::string id = "n" + std::to_string(i);
    switch (n.op) {
      case Op::kInput:
        out += "  " + id + " [shape=box,label=\"x" + std::to_string(input_idx++) +
               "\"];\n";
        break;
      case Op::kConst:
        out += "  " + id + " [shape=box,style=dotted,label=\"" +
               std::to_string(n.value) + "\"];\n";
        break;
      case Op::kRandom:
        out += "  " + id + " [shape=box,style=dashed,label=\"r" +
               std::to_string(random_idx++) + "\"];\n";
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kNeg: {
        const char* label = n.op == Op::kAdd   ? "+"
                            : n.op == Op::kSub ? "-"
                            : n.op == Op::kMul ? "*"
                            : n.op == Op::kDiv ? "/"
                                               : "neg";
        out += "  " + id + " [label=\"" + label + "\"];\n";
        out += "  n" + std::to_string(n.a) + " -> " + id + ";\n";
        if (n.op != Op::kNeg) {
          out += "  n" + std::to_string(n.b) + " -> " + id + ";\n";
        }
        break;
      }
    }
  }
  for (NodeId o : c.outputs()) {
    out += "  n" + std::to_string(o) + " [peripheries=2];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace kp::circuit

// Work/depth accounting for direct (non-circuit) implementations.
//
// The circuit framework measures the depth of *recorded* programs exactly;
// this tracker lets a direct implementation annotate its parallel structure
// so benches can report a work/span estimate without building circuits:
//
//   WorkDepth wd;
//   wd.parallel_region(rows, per_row_ops, per_row_depth);  // rows in parallel
//   wd.sequential(ops);                                     // a serial stage
//
// span() is then the critical-path estimate in field operations (the
// paper's time unit with unbounded processors), work() the total count.
#pragma once

#include <algorithm>
#include <cstdint>

namespace kp::pram {

class WorkDepth {
 public:
  /// k independent tasks, each of the given work and depth: work adds
  /// k * task_work, span adds only task_depth.
  void parallel_region(std::uint64_t k, std::uint64_t task_work,
                       std::uint64_t task_depth) {
    work_ += k * task_work;
    span_ += task_depth;
  }

  /// A sequential stage: contributes equally to work and span.
  void sequential(std::uint64_t ops) {
    work_ += ops;
    span_ += ops;
  }

  /// Two tracked computations running side by side: work adds, span maxes.
  void merge_parallel(const WorkDepth& other) {
    work_ += other.work_;
    span_ = std::max(span_, other.span_);
  }

  /// One after the other: both add.
  void merge_sequential(const WorkDepth& other) {
    work_ += other.work_;
    span_ += other.span_;
  }

  std::uint64_t work() const { return work_; }
  std::uint64_t span() const { return span_; }
  /// The implied processor count for Brent-style scheduling.
  double parallelism() const {
    return span_ == 0 ? 0.0 : static_cast<double>(work_) / static_cast<double>(span_);
  }

 private:
  std::uint64_t work_ = 0;
  std::uint64_t span_ = 0;
};

}  // namespace kp::pram

// Shared-memory parallel execution of independent iterations.
//
// The paper's model is an algebraic PRAM; this library reproduces its
// *depth* claims exactly through the circuit framework (circuit/), and uses
// the pooled ExecutionContext below to actually exploit whatever hardware
// parallelism exists: matrix kernels (mat_mul, mat_vec, sparse apply, the
// Krylov block merge), Monte Carlo probability sweeps, multiple bench
// configurations.  On a single-core host it degrades to the serial loop.
//
// Determinism contract: iterations must be independent, write disjoint
// outputs, and derive any randomness from their own index (seed-per-index),
// so results are identical for every worker count.
//
// Pool lifecycle: worker threads are started lazily on the first parallel
// region, reused by every subsequent region (no thread spawn per call), and
// joined when the process exits.  Field-operation counts performed by the
// workers are folded back into the submitting thread's thread-local
// counters, so an OpScope around a parallel kernel still measures the exact
// total work in the paper's own units.
//
// Exception safety: if fn(i) throws on any participant, the first exception
// is captured, the batch's remaining blocks are drained without running
// their iterations, and the exception rethrows on the *submitting* thread
// once every participant has left the batch.  The pool itself is never
// poisoned -- workers survive and the next region runs normally -- so a
// Las Vegas retry loop above a throwing kernel behaves identically at any
// worker count.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/deadline.h"
#include "util/op_count.h"
#include "util/status.h"

namespace kp::pram {

/// Number of workers a parallel region will use by default (hardware
/// concurrency, >= 1).
inline unsigned worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// A persistent pool of worker threads executing parallel-for batches.
///
/// One batch is in flight at a time (regions are short; serializing them
/// keeps the queue trivial and starvation-free).  The submitting thread
/// participates in its own batch, and a nested parallel_for issued from
/// inside a region runs serially on the issuing thread -- which both
/// preserves the determinism contract and makes the pool deadlock-free by
/// construction (no pool thread ever blocks on another batch).
class ExecutionContext {
 public:
  static ExecutionContext& global() {
    static ExecutionContext ctx;
    return ctx;
  }

  ExecutionContext() = default;

  ~ExecutionContext() { shutdown(); }

  /// Stops and joins the pool.  Idempotent and safe to race with in-flight
  /// regions: a batch already running retires normally (its submitter
  /// participates, so losing the workers cannot strand it), workers exit
  /// once idle, and join() waits for them.  After shutdown, parallel_for
  /// degrades to the serial loop (defined behavior, no new threads) and
  /// parallel_for_status reports FailureKind::kShutdown.
  void shutdown() {
    std::vector<std::thread> joining;
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_.store(true, std::memory_order_relaxed);
      joining.swap(threads_);
    }
    cv_.notify_all();
    submit_cv_.notify_all();
    for (auto& th : joining) th.join();
  }

  bool is_shutdown() const { return stop_.load(std::memory_order_relaxed); }

  /// Total threads ever spawned by this context; stays at most one less
  /// than the largest degree ever requested (worker_count() - 1 unless a
  /// region or worker pin asked for more), which is how the tests pin down
  /// "pooled, not per-call" behavior.
  std::uint64_t threads_started() const {
    return threads_started_.load(std::memory_order_relaxed);
  }

  /// Pins the parallelism degree of subsequent regions (0 = hardware).
  /// A pin below worker_count() caps the degree; a pin above it is honored
  /// too (the pool grows on demand, up to kMaxPoolThreads), so worker-count
  /// sweeps in the benches measure real thread interleavings even on hosts
  /// with few cores.  Used by tests to compare 1-worker and N-worker runs
  /// bit-for-bit.
  void set_worker_limit(unsigned limit) { worker_limit_.store(limit); }
  unsigned worker_limit() const { return worker_limit_.load(); }

  /// Hard ceiling on pool threads regardless of requested degree.
  static constexpr unsigned kMaxPoolThreads = 32;

  /// Runs fn(i) for i in [begin, end), blocking until every iteration
  /// finished.  If fn throws, the first exception (in claim order) rethrows
  /// here after the remaining blocks are drained; the pool stays usable.
  /// max_workers limits this region's parallelism (0 = default).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    unsigned max_workers = 0) {
    const unsigned workers = region_degree(begin, end, max_workers);
    // Serial fast path: empty/one-worker regions, a nested region (a pool
    // thread or a region-running submitter must never wait on the pool
    // again), or a shut-down pool (the legacy void API keeps running
    // serially -- defined behavior instead of the old spawn-after-join UB).
    if (workers <= 1 || in_region() || is_shutdown()) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return;
    }
    const kp::util::Status st = submit_region(begin, end, fn, workers, nullptr);
    if (!st.ok()) {
      // Lost the shutdown race while waiting for the batch slot: fall back
      // to the same serial loop the pre-submit check would have taken.
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  }

  /// Status-returning variant for callers that must NOT silently degrade:
  /// after shutdown() it reports FailureKind::kShutdown instead of running,
  /// and with a control token it refuses expired/cancelled work up front and
  /// bounds the wait for the batch slot by the deadline (kDeadlineExceeded
  /// without running a single iteration).  Iterations already started are
  /// never interrupted -- cancellation stays cooperative, checked by the
  /// pipeline between stages, not mid-kernel.
  kp::util::Status parallel_for_status(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t)>& fn, unsigned max_workers = 0,
      const kp::util::ExecControl* control = nullptr,
      kp::util::Stage where = kp::util::Stage::kServiceExecute) {
    if (auto st = kp::util::ExecControl::check(control, where); !st.ok()) {
      return st;
    }
    if (is_shutdown()) {
      return kp::util::Status::Fail(kp::util::FailureKind::kShutdown, where,
                                    "execution context shut down");
    }
    const unsigned workers = region_degree(begin, end, max_workers);
    if (workers <= 1 || in_region()) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      return kp::util::Status::Ok();
    }
    kp::util::Status st = submit_region(begin, end, fn, workers, control);
    if (!st.ok() && st.kind() == kp::util::FailureKind::kShutdown) {
      // Shutdown raced the submit: the region never ran; report it rather
      // than degrade, the caller opted into strict semantics.
      return kp::util::Status::Fail(kp::util::FailureKind::kShutdown, where,
                                    "execution context shut down");
    }
    return st;
  }

 private:
  /// Effective parallelism degree of a region after the worker pin, the
  /// iteration count, and the pool ceiling are applied.
  unsigned region_degree(std::size_t begin, std::size_t end,
                         unsigned max_workers) const {
    const std::size_t count = end > begin ? end - begin : 0;
    if (count == 0) return 0;
    unsigned workers = max_workers == 0 ? worker_count() : max_workers;
    if (const unsigned limit = worker_limit(); limit != 0) {
      // A pin overrides the default degree in both directions; an explicit
      // per-region max_workers is still only ever capped by it.
      workers = max_workers == 0 ? limit : std::min(workers, limit);
    }
    if (workers > count) workers = static_cast<unsigned>(count);
    if (workers > kMaxPoolThreads + 1) workers = kMaxPoolThreads + 1;
    return workers;
  }

  /// The pooled submission path shared by both public entry points.
  /// Returns kShutdown (without running anything) if the pool stopped
  /// before the batch was installed, kDeadlineExceeded if the control
  /// deadline expired while waiting for the batch slot.
  kp::util::Status submit_region(std::size_t begin, std::size_t end,
                                 const std::function<void(std::size_t)>& fn,
                                 unsigned workers,
                                 const kp::util::ExecControl* control) {
    const std::size_t count = end - begin;
    // Static block partition: iterations are assumed comparable in cost
    // (rows, Monte Carlo trials); blocks avoid false sharing of counters.
    Batch batch;
    batch.fn = &fn;
    batch.begin = begin;
    batch.end = end;
    batch.chunk = (count + workers - 1) / workers;
    batch.blocks = (count + batch.chunk - 1) / batch.chunk;

    std::unique_lock<std::mutex> lk(m_);
    if (stop_.load(std::memory_order_relaxed)) {
      return kp::util::Status::Fail(kp::util::FailureKind::kShutdown,
                                    kp::util::Stage::kServiceExecute,
                                    "execution context shut down");
    }
    ensure_started(lk, workers);
    // Serialize batches from concurrent submitters; a control deadline
    // bounds the wait so an overloaded pool sheds instead of queueing.
    const auto slot_free = [&] {
      return batch_ == nullptr || stop_.load(std::memory_order_relaxed);
    };
    if (control != nullptr && control->deadline.has_deadline()) {
      if (!submit_cv_.wait_until(lk, control->deadline.time_point(),
                                 slot_free)) {
        return kp::util::Status::Fail(kp::util::FailureKind::kDeadlineExceeded,
                                      kp::util::Stage::kServiceExecute,
                                      "deadline expired waiting for the pool");
      }
    } else {
      submit_cv_.wait(lk, slot_free);
    }
    if (stop_.load(std::memory_order_relaxed)) {
      return kp::util::Status::Fail(kp::util::FailureKind::kShutdown,
                                    kp::util::Stage::kServiceExecute,
                                    "execution context shut down");
    }
    batch_ = &batch;
    ++epoch_;
    cv_.notify_all();
    in_region() = true;     // nested regions from fn must not resubmit
    run_blocks(batch, lk);  // the submitter works on its own batch too
    in_region() = false;
    done_cv_.wait(lk, [&] {
      return batch.done == batch.blocks && batch.inside == 0;
    });
    batch_ = nullptr;
    submit_cv_.notify_one();
    lk.unlock();
    // Fold the workers' field-op counts into this thread's counters so the
    // measured work is independent of the degree of parallelism.
    kp::util::tl_op_counts += batch.worker_ops;
    if (batch.error) std::rethrow_exception(batch.error);
    return kp::util::Status::Ok();
  }
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t begin = 0, end = 0, chunk = 1;
    std::size_t blocks = 0;
    std::size_t next = 0;    ///< next unclaimed block (guarded by m_)
    std::size_t done = 0;    ///< completed blocks (guarded by m_)
    int inside = 0;          ///< threads currently touching the batch
    kp::util::OpCounts worker_ops;  ///< ops performed by pool threads
    std::exception_ptr error;       ///< first exception (guarded by m_)
  };

  static bool& in_region() {
    thread_local bool flag = false;
    return flag;
  }

  /// Grows the pool (lazily, on demand) until it can serve a region of
  /// `workers` participants: the submitter plus workers-1 pool threads.
  /// Never shrinks; repeat requests at or below the high-water mark spawn
  /// nothing, preserving the pooled-not-per-call property.
  void ensure_started(std::unique_lock<std::mutex>&, unsigned workers) {
    if (stop_.load(std::memory_order_relaxed)) return;  // never spawn
    const unsigned want =
        std::min(workers > 0 ? workers - 1 : 0, kMaxPoolThreads);
    while (threads_.size() < want) {
      threads_.emplace_back([this] { worker_loop(); });
      threads_started_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Claims and runs blocks of the batch until none remain.  Called with
  /// the lock held; runs iterations unlocked.  Once any participant's
  /// iteration throws, the remaining blocks are claimed but their iterations
  /// are skipped (drained), so done reaches blocks and every waiter wakes;
  /// the submitter rethrows the stored exception after the batch retires.
  void run_blocks(Batch& b, std::unique_lock<std::mutex>& lk) {
    ++b.inside;
    while (b.next < b.blocks) {
      const std::size_t k = b.next++;
      const std::size_t lo = b.begin + k * b.chunk;
      const std::size_t hi = std::min(b.end, lo + b.chunk);
      const bool drain = b.error != nullptr;
      lk.unlock();
      if (!drain) {
        try {
          for (std::size_t i = lo; i < hi; ++i) (*b.fn)(i);
        } catch (...) {
          lk.lock();
          if (!b.error) b.error = std::current_exception();
          ++b.done;
          continue;
        }
      }
      lk.lock();
      ++b.done;
    }
    --b.inside;
    if (b.done == b.blocks && b.inside == 0) done_cv_.notify_all();
  }

  void worker_loop() {
    in_region() = true;  // nested regions from this thread run serially
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cv_.wait(lk, [&] {
        return stop_.load(std::memory_order_relaxed) || epoch_ != seen;
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      seen = epoch_;
      if (Batch* b = batch_) {
        const kp::util::OpCounts before = kp::util::tl_op_counts;
        run_blocks(*b, lk);
        b->worker_ops += kp::util::tl_op_counts - before;
        kp::util::tl_op_counts = before;  // submitter re-credits the total
      }
    }
  }

  std::mutex m_;
  std::condition_variable cv_;         ///< workers: new batch / stop
  std::condition_variable done_cv_;    ///< submitter: batch finished
  std::condition_variable submit_cv_;  ///< submitters: batch slot free
  std::vector<std::thread> threads_;
  Batch* batch_ = nullptr;
  std::uint64_t epoch_ = 0;
  /// Set under m_ (condition-variable correctness) but readable lock-free
  /// by is_shutdown() and the serial-fallback checks.
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> worker_limit_{0};
  std::atomic<std::uint64_t> threads_started_{0};
};

/// Runs fn(i) for i in [begin, end) on the global pooled context.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& fn,
                         unsigned max_workers = 0) {
  ExecutionContext::global().parallel_for(begin, end, fn, max_workers);
}

/// Map over [0, n) into a result vector (each slot written by exactly one
/// iteration).
template <class T, class Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn, unsigned max_workers = 0) {
  std::vector<T> out(n);
  parallel_for(
      0, n, [&](std::size_t i) { out[i] = fn(i); }, max_workers);
  return out;
}

}  // namespace kp::pram

// Shared-memory parallel execution of independent iterations.
//
// The paper's model is an algebraic PRAM; this library reproduces its
// *depth* claims exactly through the circuit framework (circuit/), and uses
// this thread pool to actually exploit whatever hardware parallelism exists
// for embarrassingly parallel work: Monte Carlo probability sweeps,
// independent matrix rows, multiple bench configurations.  On a single-core
// host it degrades to the serial loop.
//
// Determinism contract: iterations must be independent and derive any
// randomness from their own index (seed-per-index), so results are
// identical for every thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace kp::pram {

/// Number of workers parallel_for will use (hardware concurrency, >= 1).
inline unsigned worker_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(i) for i in [begin, end) across the available hardware threads.
/// Blocks until every iteration finished.  fn must not throw.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& fn,
                         unsigned max_workers = 0) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  unsigned workers = max_workers == 0 ? worker_count() : max_workers;
  if (workers > count) workers = static_cast<unsigned>(count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Static block partition: iterations are assumed comparable in cost
  // (Monte Carlo trials, rows); blocks avoid false sharing of counters.
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (count + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t lo = begin + static_cast<std::size_t>(w) * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& th : pool) th.join();
}

/// Map over [0, n) into a result vector (each slot written by exactly one
/// iteration).
template <class T, class Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn, unsigned max_workers = 0) {
  std::vector<T> out(n);
  parallel_for(
      0, n, [&](std::size_t i) { out[i] = fn(i); }, max_workers);
  return out;
}

}  // namespace kp::pram

// Experiments E2, E3, E4: the paper's probability bounds, Monte Carlo.
//
//   E2 (Lemma 2):    Prob(f_u^{A,b} != f^A)              <= 2 deg(f^A)/|S|
//   E3 (Theorem 2):  Prob(some leading minor of A*H = 0) <= n(n-1)/(2|S|)
//   E4 (estimate 2): Prob(pipeline failure on nonsingular A) <= 3 n^2/|S|
//
// Random elements are drawn from the canonical sample set S of the field
// (|S| is the knob; the field itself is a large prime field so the bound,
// which depends only on |S|, is the binding constraint).
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "pram/parallel_for.h"
#include "core/wiedemann.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "seq/berlekamp_massey.h"
#include "util/bench_json.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::Zp<1000003>;

int main() {
  F f;
  kp::util::Prng prng(777);
  kp::util::BenchReport report("probability");
  const int kTrials = 300;

  // --- E2: Lemma 2 ---------------------------------------------------------
  std::printf("E2 (Lemma 2): random projection preserves the minimum polynomial\n");
  std::printf("%d trials per row; failure = deg(f_u^{A,b}) < deg(f^A)\n\n", kTrials);
  kp::util::Table t2({"n", "|S|", "observed fail", "bound 2n/|S|", "within bound"});
  for (std::size_t n : {4u, 8u}) {
    for (std::uint64_t s : {2ull, 4ull, 16ull, 256ull}) {
      kp::util::WallTimer wt;
      int fails = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        // Random dense A over the FULL field: w.h.p. deg(f^A) = n.
        auto a = kp::matrix::random_matrix(f, n, n, prng);
        kp::matrix::DenseBox<F> box(f, a);
        std::vector<F::Element> u(n), b(n);
        for (auto& e : u) e = f.sample(prng, s);
        for (auto& e : b) e = f.sample(prng, s);
        auto seq = kp::matrix::krylov_sequence_iterative(f, box, u, b, 2 * n);
        auto mp = kp::seq::berlekamp_massey(f, seq);
        if (mp.size() != n + 1) ++fails;
      }
      const double observed = static_cast<double>(fails) / kTrials;
      const double bound = 2.0 * static_cast<double>(n) / static_cast<double>(s);
      t2.add_row({std::to_string(n), std::to_string(s),
                  kp::util::Table::num(observed, 3),
                  kp::util::Table::num(bound, 3),
                  observed <= bound ? "yes" : "NO"});
      report.begin_row("E2_lemma2");
      report.put("n", n);
      report.put("sample_size", static_cast<std::uint64_t>(s));
      report.put("observed_fail", observed);
      report.put("bound", bound);
      report.put("within_bound", observed <= bound);
      report.put("wall_ms", wt.elapsed_ms());
    }
  }
  t2.print();

  // --- E3: Theorem 2 -------------------------------------------------------
  std::printf("\nE3 (Theorem 2): all leading principal minors of A*H nonzero\n\n");
  kp::util::Table t3(
      {"n", "|S|", "observed fail", "bound n(n-1)/(2|S|)", "within bound"});
  kp::poly::PolyRing<F> ring(f);
  for (std::size_t n : {4u, 8u}) {
    for (std::uint64_t s : {2ull, 4ull, 16ull, 256ull}) {
      kp::util::WallTimer wt;
      int fails = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        // Non-singular A (adversarial: zero leading minors of A itself).
        auto a = kp::matrix::random_matrix(f, n, n, prng);
        for (std::size_t i = 0; i < n; ++i) a.at(i, i) = f.zero();
        if (f.is_zero(kp::matrix::det_gauss(f, a))) continue;
        auto h = kp::matrix::Hankel<F>::random(f, n, prng, s);
        auto ah = kp::matrix::mat_mul(f, a, h.to_dense(f));
        for (std::size_t i = 1; i <= n; ++i) {
          if (f.is_zero(kp::matrix::det_gauss(
                  f, kp::matrix::leading_principal(f, ah, i)))) {
            ++fails;
            break;
          }
        }
      }
      const double observed = static_cast<double>(fails) / kTrials;
      const double bound =
          static_cast<double>(n) * (static_cast<double>(n) - 1) / (2.0 * static_cast<double>(s));
      t3.add_row({std::to_string(n), std::to_string(s),
                  kp::util::Table::num(observed, 3),
                  kp::util::Table::num(bound, 3),
                  observed <= bound ? "yes" : "NO"});
      report.begin_row("E3_theorem2");
      report.put("n", n);
      report.put("sample_size", static_cast<std::uint64_t>(s));
      report.put("observed_fail", observed);
      report.put("bound", bound);
      report.put("within_bound", observed <= bound);
      report.put("wall_ms", wt.elapsed_ms());
    }
  }
  t3.print();

  // --- E4: estimate (2) ----------------------------------------------------
  std::printf("\nE4 (estimate (2)): full-pipeline failure on non-singular inputs\n\n");
  kp::util::Table t4({"n", "|S|", "observed fail", "bound 3n^2/|S|", "within bound"});
  for (std::size_t n : {4u, 6u}) {
    for (std::uint64_t s : {16ull, 64ull, 256ull, 4096ull}) {
      kp::util::WallTimer wt;
      // Trials are independent; fan them out over the hardware threads
      // (deterministic: each trial derives its randomness from its index).
      auto outcomes = kp::pram::parallel_map<int>(kTrials, [&](std::size_t trial) {
        kp::util::Prng trial_prng(n * 1000003 + s * 101 + trial);
        kp::matrix::Matrix<F> a = kp::matrix::random_matrix(f, n, n, trial_prng);
        while (f.is_zero(kp::matrix::det_gauss(f, a))) {
          a = kp::matrix::random_matrix(f, n, n, trial_prng);
        }
        std::vector<F::Element> b(n);
        for (auto& e : b) e = f.random(trial_prng);
        kp::core::SolverOptions opt;
        opt.sample_size = s;
        opt.max_attempts = 1;  // measure per-attempt failure
        return kp::core::kp_solve(f, a, b, trial_prng, opt).ok ? 0 : 1;
      });
      int fails = 0;
      for (int o : outcomes) fails += o;
      const double observed = static_cast<double>(fails) / kTrials;
      const double bound =
          3.0 * static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(s);
      t4.add_row({std::to_string(n), std::to_string(s),
                  kp::util::Table::num(observed, 3),
                  kp::util::Table::num(bound >= 1 ? 1.0 : bound, 3),
                  observed <= bound ? "yes" : "NO"});
      report.begin_row("E4_estimate2");
      report.put("n", n);
      report.put("sample_size", static_cast<std::uint64_t>(s));
      report.put("observed_fail", observed);
      report.put("bound", bound);
      report.put("within_bound", observed <= bound);
      report.put("wall_ms", wt.elapsed_ms());
    }
  }
  t4.print();
  std::printf("\nAll observed failure rates must sit below the paper's bounds\n"
              "(the bounds are loose by design; observed rates are far smaller).\n");
  return 0;
}

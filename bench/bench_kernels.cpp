// Wall-clock micro-benchmarks of the substrate kernels (google-benchmark).
// These complement the op-count experiments: op counts are the paper's cost
// model, wall time shows the constants of this implementation.
#include <benchmark/benchmark.h>

#include <vector>

#include "field/zp.h"
#include "matrix/gauss.h"
#include "matrix/matmul.h"
#include "poly/poly.h"
#include "seq/berlekamp_massey.h"
#include "seq/linear_gen.h"
#include "seq/newton_toeplitz.h"
#include "util/prng.h"

namespace {

using F = kp::field::GFp;

F make_field() { return F(kp::field::kNttPrime); }

void BM_FieldMul(benchmark::State& state) {
  auto f = make_field();
  kp::util::Prng prng(1);
  auto a = f.random(prng);
  const auto b = f.random(prng);
  for (auto _ : state) {
    a = f.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_FieldInv(benchmark::State& state) {
  auto f = make_field();
  kp::util::Prng prng(2);
  auto a = f.random(prng);
  for (auto _ : state) {
    a = f.inv(f.add(a, f.one()));
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldInv);

void BM_PolyMul(benchmark::State& state) {
  auto f = make_field();
  const auto strategy = static_cast<kp::poly::MulStrategy>(state.range(1));
  kp::poly::PolyRing<F> ring(f, strategy);
  kp::util::Prng prng(3);
  auto a = ring.random_degree(prng, state.range(0));
  auto b = ring.random_degree(prng, state.range(0));
  for (auto _ : state) {
    auto c = ring.mul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PolyMul)
    ->ArgsProduct({{64, 256, 1024},
                   {static_cast<int>(kp::poly::MulStrategy::kSchoolbook),
                    static_cast<int>(kp::poly::MulStrategy::kKaratsuba),
                    static_cast<int>(kp::poly::MulStrategy::kNtt)}});

void BM_MatMul(benchmark::State& state) {
  auto f = make_field();
  const auto strategy = static_cast<kp::matrix::MatMulStrategy>(state.range(1));
  kp::util::Prng prng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = kp::matrix::random_matrix(f, n, n, prng);
  auto b = kp::matrix::random_matrix(f, n, n, prng);
  for (auto _ : state) {
    auto c = kp::matrix::mat_mul(f, a, b, strategy);
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatMul)
    ->ArgsProduct({{32, 64, 128},
                   {static_cast<int>(kp::matrix::MatMulStrategy::kClassical),
                    static_cast<int>(kp::matrix::MatMulStrategy::kStrassen)}});

void BM_BerlekampMassey(benchmark::State& state) {
  auto f = make_field();
  kp::util::Prng prng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<F::Element> mp(n + 1);
  for (std::size_t i = 0; i < n; ++i) mp[i] = f.random(prng);
  mp[n] = f.one();
  std::vector<F::Element> seed(n);
  for (auto& v : seed) v = f.random(prng);
  auto seq = kp::seq::sequence_with_minpoly(f, mp, seed, 2 * n);
  for (auto _ : state) {
    auto g = kp::seq::berlekamp_massey(f, seq);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_BerlekampMassey)->Arg(64)->Arg(256)->Arg(1024);

void BM_ToeplitzCharpoly(benchmark::State& state) {
  auto f = make_field();
  kp::util::Prng prng(6);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<F::Element> diag(2 * n - 1);
  for (auto& v : diag) v = f.random(prng);
  kp::matrix::Toeplitz<F> t(n, diag);
  for (auto _ : state) {
    auto p = kp::seq::toeplitz_charpoly(f, t);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ToeplitzCharpoly)->Arg(16)->Arg(32)->Arg(64);

void BM_GaussSolve(benchmark::State& state) {
  auto f = make_field();
  kp::util::Prng prng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = kp::matrix::random_matrix(f, n, n, prng);
  std::vector<F::Element> b(n);
  for (auto& e : b) e = f.random(prng);
  for (auto _ : state) {
    auto x = kp::matrix::solve_gauss(f, a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_GaussSolve)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();

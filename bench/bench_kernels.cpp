// Wall-clock benchmarks of the fast modular-arithmetic kernel layer
// (field/fastmod.h, field/kernels.h) against the frozen seed arithmetic
// (field/reference.h).  These complement the op-count experiments: op counts
// are the paper's cost model and are asserted IDENTICAL between the two
// paths here; wall time shows the constants the kernel layer buys.
//
// Exits non-zero on any value or op-count mismatch, so CI can run this as a
// correctness smoke test; timing is reported, never gated.  Emits
// BENCH_kernels.json (util/bench_json.h) for machine consumption.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/solver.h"
#include "field/bigint.h"
#include "field/reference.h"
#include "field/simd.h"
#include "field/zp.h"
#include "matrix/matmul.h"
#include "matrix/sparse.h"
#include "poly/ntt.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

namespace {

using Fast = kp::field::GFp;
using FastZp = kp::field::Zp<kp::field::kNttPrime>;
using Ref = kp::field::GFpReference;

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("MISMATCH: %s\n", what);
    ++failures;
  }
}

bool same_counts(const kp::util::OpCounts& a, const kp::util::OpCounts& b) {
  return a.add == b.add && a.mul == b.mul && a.div == b.div &&
         a.zero_test == b.zero_test;
}

/// Best-of-reps wall time of fn(), in milliseconds.
template <class Fn>
double time_ms(Fn&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    kp::util::WallTimer t;
    fn();
    const double ms = t.elapsed_ms();
    if (ms < best) best = ms;
  }
  return best;
}

std::vector<std::uint64_t> random_residues(std::uint64_t p, std::size_t n,
                                           std::uint64_t seed) {
  kp::util::Prng prng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = prng.below(p);
  return v;
}

template <class F>
kp::matrix::Matrix<F> matrix_from(const F& f,
                                  const std::vector<std::uint64_t>& vals,
                                  std::size_t rows, std::size_t cols) {
  kp::matrix::Matrix<F> m(rows, cols, f.zero());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m.at(i, j) = vals[i * cols + j];
  }
  return m;
}

}  // namespace

int main() {
  const std::uint64_t p = kp::field::kNttPrime;
  Fast fast(p);
  FastZp zp;
  Ref ref(p);
  kp::util::BenchReport report("kernels");
  kp::util::Table table(
      {"kernel", "n", "ref ms", "fast ms", "speedup", "ops", "match"});

  auto add_row = [&](const char* kernel, std::size_t n, double ref_ms,
                     double fast_ms, std::uint64_t ops, bool match) {
    const double speedup = fast_ms > 0 ? ref_ms / fast_ms : 0;
    table.add_row({kernel, std::to_string(n), kp::util::Table::num(ref_ms, 3),
                   kp::util::Table::num(fast_ms, 3),
                   kp::util::Table::num(speedup, 2), kp::util::Table::num(ops),
                   match ? "yes" : "NO"});
    report.begin_row(kernel);
    report.put("n", n);
    report.put("ref_ms", ref_ms);
    report.put("fast_ms", fast_ms);
    report.put("speedup", speedup);
    report.put("ops", ops);
    report.put("match", match);
  };

  std::printf("Fast-kernel layer vs frozen seed arithmetic (p = %llu)\n\n",
              static_cast<unsigned long long>(p));

  {
    // Elementwise field multiplication (independent products, the regime
    // every kernel runs in): the REDC chains of the runtime-modulus GFp and
    // compile-time Zp<P> against the 128-bit `%` of the seed.
    const std::size_t n = 1 << 21;
    const auto va = random_residues(p, n, 1);
    const auto vb = random_residues(p, n, 2);
    std::vector<std::uint64_t> out_ref(n), out_fast(n), out_zp(n);
    const double ms_ref = time_ms([&] {
      for (std::size_t i = 0; i < n; ++i) out_ref[i] = ref.mul(va[i], vb[i]);
    });
    const double ms_fast = time_ms([&] {
      for (std::size_t i = 0; i < n; ++i) out_fast[i] = fast.mul(va[i], vb[i]);
    });
    const double ms_zp = time_ms([&] {
      for (std::size_t i = 0; i < n; ++i) out_zp[i] = zp.mul(va[i], vb[i]);
    });
    check(out_ref == out_fast, "field mul GFp");
    check(out_ref == out_zp, "field mul Zp");
    add_row("mul_gfp", n, ms_ref, ms_fast, n, out_ref == out_fast);
    add_row("mul_zp", n, ms_ref, ms_zp, n, out_ref == out_zp);
  }

  for (const std::size_t n : {1024u, 4096u}) {
    // Dense mat_vec: the delayed-reduction dot kernel.
    const auto vals = random_residues(p, n * n, 2);
    const auto x = random_residues(p, n, 3);
    const auto ma = matrix_from(ref, vals, n, n);
    const auto mb = matrix_from(fast, vals, n, n);
    std::vector<std::uint64_t> yr, yf;
    kp::util::OpScope sr;
    yr = kp::matrix::mat_vec(ref, ma, x);
    const auto cr = sr.counts();
    kp::util::OpScope sf;
    yf = kp::matrix::mat_vec(fast, mb, x);
    const auto cf = sf.counts();
    const bool match = yr == yf && same_counts(cr, cf);
    check(yr == yf, "mat_vec values");
    check(same_counts(cr, cf), "mat_vec op counts");
    const double ms_ref = time_ms([&] { yr = kp::matrix::mat_vec(ref, ma, x); });
    const double ms_fast = time_ms([&] { yf = kp::matrix::mat_vec(fast, mb, x); });
    add_row("mat_vec", n, ms_ref, ms_fast, cr.total(), match);
  }

  {
    // Classical matrix product: the zero-skipping dot kernel.
    const std::size_t n = 256;
    const auto va = random_residues(p, n * n, 4);
    const auto vb = random_residues(p, n * n, 5);
    const auto ar = matrix_from(ref, va, n, n), br = matrix_from(ref, vb, n, n);
    const auto af = matrix_from(fast, va, n, n), bf = matrix_from(fast, vb, n, n);
    kp::util::OpScope sr;
    auto mr = kp::matrix::mat_mul(ref, ar, br);
    const auto cr = sr.counts();
    kp::util::OpScope sf;
    auto mf = kp::matrix::mat_mul(fast, af, bf);
    const auto cf = sf.counts();
    const bool match = mr.data() == mf.data() && same_counts(cr, cf);
    check(mr.data() == mf.data(), "mat_mul values");
    check(same_counts(cr, cf), "mat_mul op counts");
    const double ms_ref = time_ms([&] { mr = kp::matrix::mat_mul(ref, ar, br); });
    const double ms_fast = time_ms([&] { mf = kp::matrix::mat_mul(fast, af, bf); });
    add_row("mat_mul_classical", n, ms_ref, ms_fast, cr.total(), match);
  }

  {
    // CSR apply: the gathered delayed-reduction kernel.
    const std::size_t n = 1 << 16;
    kp::util::Prng pr(6), pf(6);
    const auto sr_mat = kp::matrix::Sparse<Ref>::random(ref, n, 8, pr);
    const auto sf_mat = kp::matrix::Sparse<Fast>::random(fast, n, 8, pf);
    const auto x = random_residues(p, n, 7);
    kp::util::OpScope sr;
    auto yr = sr_mat.apply(ref, x);
    const auto cr = sr.counts();
    kp::util::OpScope sf;
    auto yf = sf_mat.apply(fast, x);
    const auto cf = sf.counts();
    const bool match = yr == yf && same_counts(cr, cf);
    check(yr == yf, "sparse apply values");
    check(same_counts(cr, cf), "sparse apply op counts");
    const double ms_ref = time_ms([&] { yr = sr_mat.apply(ref, x); });
    const double ms_fast = time_ms([&] { yf = sf_mat.apply(fast, x); });
    add_row("sparse_apply", sr_mat.nnz(), ms_ref, ms_fast, cr.total(), match);
  }

  for (const std::size_t n : {1024u, 4096u}) {
    // NTT polynomial product: cached Shoup twiddles vs the generic butterfly.
    const auto va = random_residues(p, n, 8);
    const auto vb = random_residues(p, n, 9);
    kp::poly::PolyRing<Ref> rr(ref, kp::poly::MulStrategy::kNtt);
    kp::poly::PolyRing<Fast> rf(fast, kp::poly::MulStrategy::kNtt);
    kp::util::OpScope sr;
    auto prod_r = rr.mul(va, vb);
    const auto cr = sr.counts();
    kp::util::OpScope sf;
    auto prod_f = rf.mul(va, vb);
    const auto cf = sf.counts();
    const bool match = prod_r == prod_f && same_counts(cr, cf);
    check(prod_r == prod_f, "ntt_mul values");
    check(same_counts(cr, cf), "ntt_mul op counts");
    const double ms_ref = time_ms([&] { prod_r = rr.mul(va, vb); });
    const double ms_fast = time_ms([&] { prod_f = rf.mul(va, vb); });
    add_row("ntt_mul", n, ms_ref, ms_fast, cr.total(), match);
  }

  {
    // Batched inversion (Montgomery's trick) vs n extended Euclids.
    const std::size_t n = 4096;
    auto vals = random_residues(p, n, 10);
    for (auto& v : vals) v |= 1;  // nonzero
    std::vector<std::uint64_t> out_r(n), out_f;
    kp::util::OpScope sr;
    for (std::size_t i = 0; i < n; ++i) out_r[i] = ref.inv(vals[i]);
    const auto cr = sr.counts();
    out_f = vals;
    kp::util::OpScope sf;
    kp::field::kernels::batch_inverse(fast, out_f.data(), n);
    const auto cf = sf.counts();
    const bool match = out_r == out_f && same_counts(cr, cf);
    check(out_r == out_f, "batch_inverse values");
    check(same_counts(cr, cf), "batch_inverse op counts");
    const double ms_ref = time_ms([&] {
      for (std::size_t i = 0; i < n; ++i) out_r[i] = ref.inv(vals[i]);
    });
    const double ms_fast = time_ms([&] {
      out_f = vals;
      kp::field::kernels::batch_inverse(fast, out_f.data(), n);
    });
    add_row("batch_inverse", n, ms_ref, ms_fast, cr.total(), match);
  }

  {
    // End-to-end Theorem-4 solve, fast field vs seed field.
    const std::size_t n = 96;
    const auto va = random_residues(p, n * n, 11);
    const auto vb = random_residues(p, n, 12);
    const auto ar = matrix_from(ref, va, n, n);
    const auto af = matrix_from(fast, va, n, n);
    kp::util::Prng pr(13), pf(13);
    kp::util::OpScope sr;
    auto res_r = kp::core::kp_solve(ref, ar, vb, pr);
    const auto cr = sr.counts();
    kp::util::OpScope sf;
    auto res_f = kp::core::kp_solve(fast, af, vb, pf);
    const auto cf = sf.counts();
    const bool match = res_r.ok == res_f.ok && res_r.x == res_f.x &&
                       same_counts(cr, cf);
    check(res_r.ok == res_f.ok && res_r.x == res_f.x, "kp_solve values");
    check(same_counts(cr, cf), "kp_solve op counts");
    const double ms_ref = time_ms([&] {
      kp::util::Prng pp(13);
      auto r = kp::core::kp_solve(ref, ar, vb, pp);
      (void)r;
    });
    const double ms_fast = time_ms([&] {
      kp::util::Prng pp(13);
      auto r = kp::core::kp_solve(fast, af, vb, pp);
      (void)r;
    });
    add_row("kp_solve", n, ms_ref, ms_fast, cr.total(), match);
  }

  {
    // Rational normalization: BigInt::gcd's binary (Stein) fast path for
    // word-size operands -- the hot loop of CRT rational reconstruction --
    // against a plain division-based Euclid on the same BigInt values.
    using kp::field::BigInt;
    const std::size_t n = 1 << 14;
    kp::util::Prng prng(17);
    std::vector<BigInt> as, bs;
    as.reserve(n);
    bs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto g = 1 + prng.below(1u << 20);
      as.push_back(BigInt(static_cast<std::int64_t>(g * (1 + prng.below(1u << 20)))));
      bs.push_back(BigInt(static_cast<std::int64_t>(g * (1 + prng.below(1u << 20)))));
    }
    auto euclid = [](BigInt a, BigInt b) {
      while (!b.is_zero()) {
        BigInt r = a % b;
        a = std::move(b);
        b = std::move(r);
      }
      return a.is_negative() ? -a : a;
    };
    std::vector<BigInt> out_ref(n), out_fast(n);
    const double ms_ref = time_ms([&] {
      for (std::size_t i = 0; i < n; ++i) out_ref[i] = euclid(as[i], bs[i]);
    });
    const double ms_fast = time_ms([&] {
      for (std::size_t i = 0; i < n; ++i) out_fast[i] = BigInt::gcd(as[i], bs[i]);
    });
    const bool match = out_ref == out_fast;
    check(match, "binary gcd vs division euclid");
    add_row("bigint_gcd_word", n, ms_ref, ms_fast, n, match);
  }

  {
    // SIMD dispatch-level ablation: the same fast kernels with the vector
    // backend pinned to each level, timed against the forced-scalar kernel
    // path (what this binary measured before the SIMD backend existed).
    // Values are asserted bit-identical across levels -- the backend is
    // invisible except in wall clock.
    namespace simd = kp::field::simd;
    const simd::SimdLevel max_level = simd::simd_max_level();
    const std::size_t n = 4096;
    const auto va = random_residues(p, n, 20);
    const auto vb = random_residues(p, n, 21);
    kp::poly::PolyRing<Fast> rf(fast, kp::poly::MulStrategy::kNtt);

    struct Lvl {
      const char* name;
      simd::SimdLevel level;
      bool ifma;
    };
    const Lvl levels[] = {
        {"dot@scalar", simd::SimdLevel::kScalar, false},
        {"dot@avx2", simd::SimdLevel::kAvx2, false},
        {"dot@avx512", simd::SimdLevel::kAvx512, false},
        {"dot@avx512+ifma", simd::SimdLevel::kAvx512, true},
    };
    double dot_scalar_ms = 0;
    std::uint64_t dot_scalar_val = 0;
    const int dot_iters = 4000;
    for (const auto& l : levels) {
      if (simd::set_simd_level(l.level) != l.level) continue;  // unavailable
      simd::set_simd_ifma(l.ifma);
      if (l.ifma && !simd::simd_ifma()) continue;  // no IFMA hardware
      std::uint64_t sink = 0;
      const double ms = time_ms([&] {
        for (int it = 0; it < dot_iters; ++it) {
          sink ^= kp::field::kernels::dot(fast, va.data(), vb.data(), n);
        }
      });
      const std::uint64_t val =
          kp::field::kernels::dot(fast, va.data(), vb.data(), n);
      if (l.level == simd::SimdLevel::kScalar) {
        dot_scalar_ms = ms;
        dot_scalar_val = val;
      }
      const bool match = val == dot_scalar_val;
      check(match, "simd ablation: dot value vs scalar kernel");
      add_row(l.name, n, dot_scalar_ms, ms, static_cast<std::uint64_t>(n), match);
      (void)sink;
    }

    const Lvl ntt_levels[] = {
        {"ntt_mul@scalar", simd::SimdLevel::kScalar, false},
        {"ntt_mul@avx2", simd::SimdLevel::kAvx2, false},
        {"ntt_mul@avx512", simd::SimdLevel::kAvx512, false},
    };
    double ntt_scalar_ms = 0;
    std::vector<std::uint64_t> ntt_scalar_prod;
    const int ntt_iters = 40;
    for (const auto& l : ntt_levels) {
      if (simd::set_simd_level(l.level) != l.level) continue;
      std::vector<std::uint64_t> prod;
      const double ms = time_ms([&] {
        for (int it = 0; it < ntt_iters; ++it) prod = rf.mul(va, vb);
      });
      if (l.level == simd::SimdLevel::kScalar) {
        ntt_scalar_ms = ms;
        ntt_scalar_prod = prod;
      }
      const bool match = prod == ntt_scalar_prod;
      check(match, "simd ablation: ntt_mul value vs scalar kernel");
      add_row(l.name, n, ntt_scalar_ms, ms, static_cast<std::uint64_t>(n), match);
    }
    simd::set_simd_level(max_level);
    simd::set_simd_ifma(true);
  }

  table.print();
  report.write();
  if (failures) {
    std::printf("\n%d kernel mismatch(es)\n", failures);
    return 1;
  }
  std::printf("\nall kernels bit-identical to the seed path, op counts equal\n");
  return 0;
}

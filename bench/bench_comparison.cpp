// Experiment E11 (the section-1 positioning): work comparison of every
// determinant/charpoly method in the library, reproducing the paper's
// landscape --
//
//   Gaussian elimination    O(n^3) work, depth ~n (sequential)
//   Wiedemann + BM          O(n^3) work, randomized
//   Kaltofen-Pan (Thm 4)    O(n^3 polylog) work, depth O(log^2 n)
//   Csanky/Leverrier        O(n^4) work (the processor gap the paper closes)
//   Faddeev-LeVerrier       O(n^4) work
//   Berkowitz               O(n^4) work, division-free, any characteristic
//   Chistov                 O(n^4) work, any characteristic
//
// "Who wins": elimination has the least raw work but linear depth; the KP
// pipeline pays only a polylog factor over elimination while all earlier
// NC^2 methods (Csanky/Berkowitz/Chistov) pay a factor ~n.
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "circuit/field.h"
#include "core/baselines.h"
#include "core/solver.h"
#include "core/wiedemann.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::Zp<1000003>;

int main() {
  F f;
  kp::util::Prng prng(2024);
  kp::util::BenchReport report("comparison");

  std::printf("E11: determinant work comparison (field operations)\n\n");
  kp::util::Table t({"n", "gauss", "wiedemann", "kp (Thm 4)", "csanky",
                     "faddeev", "berkowitz", "chistov"});
  std::vector<double> ns, kp_ops, cs_ops;
  for (std::size_t n : {8u, 16u, 32u, 48u, 64u}) {
    kp::util::WallTimer wt;
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    const auto det_ref = kp::matrix::det_gauss(f, a);
    if (f.is_zero(det_ref)) continue;

    kp::util::OpScope s0;
    (void)kp::matrix::det_gauss(f, a);
    const auto ops_gauss = s0.counts().total();

    kp::util::OpScope s1;
    auto wd = kp::core::wiedemann_det(f, a, prng, 1u << 30);
    const auto ops_wied = s1.counts().total();

    kp::util::OpScope s2;
    auto kpd = kp::core::kp_det(f, a, prng);
    const auto ops_kp = s2.counts().total();

    std::uint64_t ops_csanky = 0, ops_faddeev = 0, ops_berk = 0, ops_chistov = 0;
    bool all_ok = wd.ok && f.eq(wd.value, det_ref) && kpd.ok && f.eq(kpd.det, det_ref);
    if (n <= 48) {
      kp::util::OpScope s3;
      auto pc = kp::core::charpoly_csanky(f, a);
      ops_csanky = s3.counts().total();
      kp::util::OpScope s4;
      auto pf = kp::core::faddeev_leverrier(f, a).charpoly;
      ops_faddeev = s4.counts().total();
      kp::util::OpScope s5;
      auto pb = kp::core::charpoly_berkowitz(f, a);
      ops_berk = s5.counts().total();
      kp::util::OpScope s6;
      auto pch = kp::core::charpoly_chistov(f, a);
      ops_chistov = s6.counts().total();
      // det = (-1)^n p(0).
      const auto d = (n % 2 == 0) ? pc[0] : f.neg(pc[0]);
      all_ok = all_ok && f.eq(d, det_ref) && pc == pf && pf == pb && pb == pch;
      cs_ops.push_back(static_cast<double>(ops_csanky));
    }
    if (!all_ok) {
      std::printf("MISMATCH at n=%zu\n", n);
      return 1;
    }
    ns.push_back(static_cast<double>(n));
    kp_ops.push_back(static_cast<double>(ops_kp));
    auto cell = [](std::uint64_t v) {
      return v ? kp::util::Table::num(v) : std::string("-");
    };
    t.add_row({std::to_string(n), kp::util::Table::num(ops_gauss),
               kp::util::Table::num(ops_wied), kp::util::Table::num(ops_kp),
               cell(ops_csanky), cell(ops_faddeev), cell(ops_berk),
               cell(ops_chistov)});
    report.begin_row("E11_work");
    report.put("n", n);
    report.put("ops_gauss", ops_gauss);
    report.put("ops_wiedemann", ops_wied);
    report.put("ops_kp", ops_kp);
    report.put("ops_csanky", ops_csanky);
    report.put("ops_faddeev", ops_faddeev);
    report.put("ops_berkowitz", ops_berk);
    report.put("ops_chistov", ops_chistov);
    report.put("wall_ms", wt.elapsed_ms());
  }
  t.print();

  std::printf("\nfitted exponents: kp %.2f (expect ~3 + log factors), csanky %.2f (expect ~4)\n",
              kp::util::fit_exponent(ns, kp_ops),
              kp::util::fit_exponent(
                  std::vector<double>(ns.begin(),
                                      ns.begin() + static_cast<std::ptrdiff_t>(cs_ops.size())),
                  cs_ops));
  std::printf(
      "\nShape reproduced from the paper: the NC^2 predecessors (csanky,\n"
      "berkowitz, chistov) pay a factor ~n over elimination; the KP pipeline\n"
      "pays only polylog factors while keeping O(log^2 n) circuit depth.\n\n");

  // --- Circuit depths: record each charpoly/det algorithm symbolically. ----
  // Note: Csanky/Berkowitz/Chistov ARE NC^2 algorithms in their parallel
  // formulations, but the textbook sequential recurrences implemented here
  // (and in most references) have linear-depth chains; the KP pipeline is
  // the one whose NATURAL program is polylog-deep.  The table shows the
  // depth of the programs as implemented.
  std::printf("Recorded circuit depth of each determinant program:\n\n");
  kp::util::Table td(
      {"n", "kp (Thm 4)", "kp/log2(n)^2", "csanky", "berkowitz", "chistov"});
  std::vector<double> dns, d_kp, d_cs;
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    auto build_with = [&](auto&& algo) {
      kp::circuit::Circuit c;
      kp::circuit::CircuitBuilderField cf(c, kp::field::kNttPrime);
      kp::matrix::Matrix<kp::circuit::CircuitBuilderField> a(n, n, cf.zero());
      for (auto& e : a.data()) e = c.input();
      c.mark_output(algo(cf, a));
      return c.depth();
    };
    // The KP circuit at n = 64 would need gigabytes; its depth is the
    // established ~50 log^2 n series (bench_solver), so stop at 32.
    std::uint32_t kp_depth = 0;
    if (n <= 32) {
      kp_depth = kp::circuit::build_det_circuit(n, kp::field::kNttPrime).depth();
    }
    const auto cs = build_with([](const auto& cf, const auto& a) {
      return kp::core::charpoly_csanky(cf, a)[0];
    });
    const auto bk = build_with([](const auto& cf, const auto& a) {
      return kp::core::charpoly_berkowitz(cf, a)[0];
    });
    const auto ch = build_with([](const auto& cf, const auto& a) {
      return kp::core::charpoly_chistov(cf, a)[0];
    });
    const double lg = std::log2(static_cast<double>(n));
    dns.push_back(static_cast<double>(n));
    if (kp_depth) d_kp.push_back(kp_depth);
    d_cs.push_back(static_cast<double>(cs));
    report.begin_row("E11_depth");
    report.put("n", n);
    report.put("depth_kp", static_cast<std::uint64_t>(kp_depth));
    report.put("depth_csanky", static_cast<std::uint64_t>(cs));
    report.put("depth_berkowitz", static_cast<std::uint64_t>(bk));
    report.put("depth_chistov", static_cast<std::uint64_t>(ch));
    td.add_row({std::to_string(n),
                kp_depth ? std::to_string(kp_depth) : std::string("(see E6)"),
                kp_depth ? kp::util::Table::num(kp_depth / (lg * lg), 3)
                         : std::string("~50"),
                std::to_string(cs), std::to_string(bk), std::to_string(ch)});
  }
  td.print();
  std::printf(
      "\nfitted depth exponents: csanky %.2f (linear chain of matrix powers),\n"
      "kp %.2f over its range (polylog).  The baselines' depth grows ~n while\n",
      kp::util::fit_exponent(dns, d_cs),
      kp::util::fit_exponent(
          std::vector<double>(dns.begin(),
                              dns.begin() + static_cast<std::ptrdiff_t>(d_kp.size())),
          d_kp));
  std::printf(
      "kp's stays ~50 log^2 n: the crossover sits in the low hundreds -- the\n"
      "asymptotic regime the paper's NC^2 claim concerns.  (As published,\n"
      "Csanky/Berkowitz/Chistov also admit NC^2 circuits via parallel-prefix\n"
      "power computation, but at the processor counts the paper criticizes;\n"
      "the rows above measure the natural sequential-recurrence programs.)\n");
  std::printf("\n(Gaussian elimination cannot be recorded as a circuit at all:\n"
              "its pivoting branches on zero-tests, which the model forbids.)\n");
  return 0;
}

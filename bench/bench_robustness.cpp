// Robustness-layer benchmark: what the Las Vegas hardening costs when
// nothing goes wrong, and what a recovery costs when something does.
//
//   B1  Fault-free overhead of the taxonomy/diagnostics/fault machinery on
//       the n = 512 solver sweep: the default configuration (Diag records
//       on, fault registry compiled in) and the worst case (a fault armed
//       that never matches) against the lean configuration
//       (collect_diag = false, registry empty).  Acceptance: < 2%.
//   B2  Attempt-count and wall-clock overhead distribution of the
//       stage-targeted retries: one injected failure per stage, recovery
//       cost relative to the fault-free run.
//
// Exits non-zero on any wrong result (a returned x that is not the known
// solution, an unexpected attempt count), so CI can run it as a smoke
// test; timing is reported, never gated.  Emits BENCH_robustness.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/solver.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/dense.h"
#include "matrix/sparse.h"
#include "util/bench_json.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"
#include "util/tables.h"

namespace {

using F = kp::field::Zp<kp::field::kNttPrime>;
using kp::util::Stage;

F f;
int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("MISMATCH: %s\n", what);
    ++failures;
  }
}

template <class Fn>
double time_ms(Fn&& fn, int reps = 5) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    kp::util::WallTimer t;
    fn();
    const double ms = t.elapsed_ms();
    if (ms < best) best = ms;
  }
  return best;
}

/// Sparse upper-triangular operator with a non-zero diagonal: non-singular
/// by construction, O(n) entries, so the iterative route's 2n products make
/// the n = 512 sweep cheap enough to repeat.
kp::matrix::Sparse<F> triangular_sparse(std::size_t n, kp::util::Prng& prng) {
  std::vector<kp::matrix::Sparse<F>::Entry> entries;
  entries.reserve(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    auto d = f.random(prng);
    while (f.is_zero(d)) d = f.random(prng);
    entries.push_back({i, i, d});
    if (i + 1 < n) entries.push_back({i, i + 1, f.random(prng)});
    if (i + 7 < n) entries.push_back({i, i + 7, f.random(prng)});
  }
  return kp::matrix::Sparse<F>(f, n, n, std::move(entries));
}

kp::matrix::Matrix<F> nonsingular_dense(std::size_t n, kp::util::Prng& prng) {
  for (;;) {
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    if (!f.is_zero(kp::matrix::det_gauss(f, a))) return a;
  }
}

}  // namespace

int main() {
  kp::util::BenchReport report("robustness");

  // -------------------------------------------------------------------
  // B1: fault-free overhead on the solver sweep.
  // -------------------------------------------------------------------
  std::printf("B1: fault-free overhead of the robustness layer\n\n");
  kp::util::Table t1({"route", "n", "variant", "wall ms", "overhead %"});

  struct Sweep {
    const char* route;
    std::size_t n;
  };
  const Sweep sweeps[] = {{"iterative", 512}, {"doubling", 128}};
  for (const auto& sw : sweeps) {
    kp::util::Prng setup(1000 + sw.n);
    const bool sparse = std::string(sw.route) == "iterative";
    kp::matrix::Sparse<F> sp =
        sparse ? triangular_sparse(sw.n, setup)
               : kp::matrix::Sparse<F>(f, 1, 1, {{0, 0, f.one()}});
    kp::matrix::Matrix<F> dn = sparse ? kp::matrix::Matrix<F>(1, 1, f.one())
                                      : nonsingular_dense(sw.n, setup);
    std::vector<F::Element> x_true(sw.n);
    for (auto& e : x_true) e = f.random(setup);
    const std::vector<F::Element> b =
        sparse ? sp.apply(f, x_true) : kp::matrix::mat_vec(f, dn, x_true);
    const kp::matrix::SparseBox<F> box(f, sp);

    auto solve_once = [&](const kp::core::SolverOptions& opt) {
      kp::util::Prng prng(42);
      auto res = sparse ? kp::core::kp_solve(f, box, b, prng, opt)
                        : kp::core::kp_solve(f, dn, b, prng, opt);
      check(res.ok, "fault-free sweep solve failed");
      check(res.x == x_true, "fault-free sweep returned a wrong x");
      check(res.attempts == 1, "fault-free sweep needed a retry");
    };

    kp::core::SolverOptions lean;
    lean.collect_diag = false;
    kp::core::SolverOptions full;  // defaults: diagnostics on

    // One untimed warmup (pool spin-up, caches), then interleaved
    // best-of rounds so slow drift cancels instead of biasing whichever
    // variant runs first.
    solve_once(lean);
    double ms_lean = 1e300, ms_full = 1e300, ms_armed = 1e300;
    const int rounds = 5;
    for (int r = 0; r < rounds; ++r) {
      ms_lean = std::min(ms_lean, time_ms([&] { solve_once(lean); }, 1));
      ms_full = std::min(ms_full, time_ms([&] { solve_once(full); }, 1));
#if KP_FAULT_INJECTION_ENABLED
      // Worst case: a fault is armed, so every site takes the registry
      // lookup, but the attempt filter never matches.
      kp::util::fault::ScopedFault armed(Stage::kProjection,
                                         /*attempt=*/1 << 20,
                                         /*site_index=*/-1,
                                         /*one_shot=*/false);
      ms_armed = std::min(ms_armed, time_ms([&] { solve_once(full); }, 1));
      check(armed.fired() == 0, "armed-but-unmatching fault fired");
#else
      ms_armed = 0;
#endif
    }

    auto add = [&](const char* variant, double ms) {
      if (ms == 0) return;  // harness compiled out
      const double pct = 100.0 * (ms - ms_lean) / ms_lean;
      t1.add_row({sw.route, std::to_string(sw.n), variant,
                  kp::util::Table::num(ms, 3), kp::util::Table::num(pct, 2)});
      report.begin_row("B1_overhead");
      report.put("route", sw.route);
      report.put("n", std::uint64_t{sw.n});
      report.put("variant", variant);
      report.put("wall_ms", ms);
      report.put("overhead_pct", pct);
    };
    add("lean", ms_lean);
    add("diag", ms_full);
    add("diag+armed", ms_armed);
  }
  t1.print();

  // -------------------------------------------------------------------
  // B2: recovery cost per injected failure stage.
  // -------------------------------------------------------------------
#if KP_FAULT_INJECTION_ENABLED
  std::printf("\nB2: attempt counts and recovery cost under injected faults\n\n");
  kp::util::Table t2({"stage", "attempts", "redrew", "wall ms", "vs clean %"});

  const std::size_t n = 96;
  kp::util::Prng setup(7);
  const auto a = nonsingular_dense(n, setup);
  std::vector<F::Element> x_true(n);
  for (auto& e : x_true) e = f.random(setup);
  const auto b = kp::matrix::mat_vec(f, a, x_true);

  const double ms_clean = time_ms([&] {
    kp::util::Prng prng(42);
    auto res = kp::core::kp_solve(f, a, b, prng);
    check(res.ok && res.x == x_true, "clean reference solve failed");
  });

  const Stage stages[] = {Stage::kDraw,          Stage::kPrecondition,
                          Stage::kProjection,    Stage::kNewtonToeplitz,
                          Stage::kCharpoly,      Stage::kSolveFinish,
                          Stage::kVerify};
  for (const Stage stage : stages) {
    int attempts = 0;
    std::string redrew;
    kp::util::Diag last_diag;
    const double ms = time_ms([&] {
      kp::util::fault::ScopedFault fi(stage, /*attempt=*/1);
      kp::util::Prng prng(42);
      auto res = kp::core::kp_solve(f, a, b, prng);
      check(res.ok, "recovery failed");
      check(res.x == x_true, "recovery returned a wrong x");
      check(res.attempts == 2, "recovery needed more than one retry");
      attempts = res.attempts;
      const auto& d = res.diags.back();
      last_diag = d;
      redrew = d.redrew_precondition && d.redrew_projection ? "both"
               : d.redrew_precondition                      ? "H,D"
                                                            : "u,v";
    });
    const double pct = 100.0 * (ms - ms_clean) / ms_clean;
    t2.add_row({kp::util::to_string(stage), std::to_string(attempts), redrew,
                kp::util::Table::num(ms, 3), kp::util::Table::num(pct, 2)});
    report.begin_row("B2_recovery");
    report.put("stage", kp::util::to_string(stage));
    report.put("attempts", attempts);
    report.put("redrew", redrew);
    report.put("wall_ms", ms);
    report.put("vs_clean_pct", pct);
    // The full per-attempt record, via the shared serializer instead of a
    // hand-formatted row.
    report.put_json("diag", kp::util::to_json(last_diag));
  }

  // Degradation path: a persistent fault with a tight op budget must settle
  // through the dense baseline, never loop.
  {
    kp::util::fault::ScopedFault fi(Stage::kProjection, /*attempt=*/-1,
                                    /*site_index=*/-1, /*one_shot=*/false);
    kp::core::SolverOptions opt;
    opt.op_budget_per_attempt = 1;
    const double ms = time_ms([&] {
      kp::util::Prng prng(42);
      auto res = kp::core::kp_solve(f, a, b, prng, opt);
      check(res.ok && res.used_fallback, "op-budget degrade did not fall back");
      check(res.x == x_true, "degraded route returned a wrong x");
    });
    const double pct = 100.0 * (ms - ms_clean) / ms_clean;
    t2.add_row({"(op budget -> dense)", "1", "-", kp::util::Table::num(ms, 3),
                kp::util::Table::num(pct, 2)});
    report.begin_row("B2_degrade");
    report.put("wall_ms", ms);
    report.put("vs_clean_pct", pct);
  }
  t2.print();
#else
  std::printf("\nB2 skipped: fault injection compiled out\n");
#endif

  report.write();
  if (failures) {
    std::printf("\n%d mismatches\n", failures);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}

// Experiment E14 (section 2): Wiedemann's black-box method on sparse
// systems.  Work is 2n black-box products + Berlekamp-Massey, i.e. O(n*nnz),
// versus O(n^3) dense elimination: the sparse crossover the method exists
// for.  Field independence is demonstrated over Z_p and GF(2^8).
//
// Second report (BENCH_block_wiedemann.json): the block-width sweep
// b in {1, 2, 4, 8, 16} of block_wiedemann_solve_status on one large sparse
// system.  b = 1 IS the scalar iterative route (the call delegates); every
// block answer is cross-checked against it, so the sweep doubles as a
// correctness gate in CI.  Exits non-zero on any mismatch.
#include <cstdio>
#include <vector>

#include "core/block_krylov.h"
#include "core/wiedemann.h"
#include "field/gfpk.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "matrix/sparse.h"
#include "matrix/structured.h"
#include "poly/ntt.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::Zp<1000003>;

int main() {
  F f;
  kp::util::Prng prng(4242);
  kp::util::BenchReport report("wiedemann");
  bool all_ok = true;

  std::printf("E14 (section 2): sparse black-box solve, Wiedemann vs elimination\n\n");
  kp::util::Table t({"n", "nnz/row", "wiedemann ops", "gauss ops", "ratio", "check"});
  for (std::size_t n : {32u, 64u, 128u, 256u}) {
    for (std::size_t per_row : {3u, 8u}) {
      auto sp = kp::matrix::Sparse<F>::random(f, n, per_row, prng);
      auto dense = sp.to_dense(f);
      if (f.is_zero(kp::matrix::det_gauss(f, dense))) continue;
      std::vector<F::Element> x(n);
      for (auto& e : x) e = f.random(prng);
      auto b = sp.apply(f, x);

      kp::matrix::SparseBox<F> box(f, sp);
      kp::poly::reset_transform_stats();
      kp::util::WallTimer wt;
      kp::util::OpScope s1;
      auto sol = kp::core::wiedemann_solve(f, box, b, prng, 1u << 30);
      const auto ops_w = s1.counts().total();
      const double wied_ms = wt.elapsed_ms();
      const auto tstats = kp::poly::transform_stats();

      kp::util::OpScope s2;
      auto ref = kp::matrix::solve_gauss(f, dense, b);
      const auto ops_g = s2.counts().total();

      const bool ok = sol && ref && *sol == x && *ref == x;
      all_ok = all_ok && ok;
      t.add_row({std::to_string(n), std::to_string(per_row),
                 kp::util::Table::num(ops_w), kp::util::Table::num(ops_g),
                 kp::util::Table::num(static_cast<double>(ops_w) /
                                          static_cast<double>(ops_g),
                                      3),
                 ok ? "ok" : "FAIL"});
      report.begin_row("wiedemann_vs_gauss");
      report.put("n", n);
      report.put("nnz_per_row", per_row);
      report.put("ops_wiedemann", ops_w);
      report.put("ops_gauss", ops_g);
      report.put("wall_ms", wied_ms);
      report.put("transforms_avoided", tstats.forward_avoided);
      report.put("check", ok);
    }
  }
  t.print();
  std::printf("\nThe ratio falls as n grows at fixed sparsity: Wiedemann is\n"
              "O(n * nnz + n^2) against elimination's O(n^3).\n\n");

  std::printf("Field independence: the same black-box code over GF(2^8)\n");
  {
    kp::field::GFpk gf(2, 8);
    kp::util::Prng p2(5);
    const std::size_t n = 24;
    auto sp = kp::matrix::Sparse<kp::field::GFpk>::random(gf, n, 3, p2);
    std::vector<kp::field::GFpk::Element> x;
    for (std::size_t i = 0; i < n; ++i) x.push_back(gf.random(p2));
    auto b = sp.apply(gf, x);
    kp::matrix::SparseBox<kp::field::GFpk> box(gf, sp);
    auto sol = kp::core::wiedemann_solve(gf, box, b, p2, 256);
    bool ok = sol.has_value();
    if (ok) {
      for (std::size_t i = 0; i < n; ++i) ok = ok && gf.eq((*sol)[i], x[i]);
    }
    all_ok = all_ok && ok;
    std::printf("  n=%zu over GF(256): %s\n", n, ok ? "ok" : "FAIL");
    report.begin_row("wiedemann_gf256");
    report.put("n", n);
    report.put("check", ok);
  }

  // Structured black box: Wiedemann over a Toeplitz operator, where every
  // product reuses the matrix's cached symbol transform.  The avoided
  // forward NTTs (one per product after the first) ride alongside wall-ms.
  std::printf("\nToeplitz black box: cached-symbol transforms\n\n");
  {
    using G = kp::field::GFp;
    G g(kp::field::kNttPrime);
    kp::poly::PolyRing<G> ring(g);
    kp::util::Table tb({"n", "wall ms", "fwd ntt", "fwd avoided", "check"});
    for (std::size_t n : {64u, 128u, 256u}) {
      kp::util::Prng p3(7000 + n);
      kp::matrix::Toeplitz<G> tp = [&] {
        for (;;) {
          std::vector<G::Element> diag(2 * n - 1);
          for (auto& v : diag) v = g.random(p3);
          kp::matrix::Toeplitz<G> cand(n, std::move(diag));
          if (!g.is_zero(kp::matrix::det_gauss(g, cand.to_dense(g)))) {
            return cand;
          }
        }
      }();
      std::vector<G::Element> x(n), b;
      for (auto& e : x) e = g.random(p3);
      b = tp.apply(ring, x);
      kp::matrix::ToeplitzBox<G> box(ring, tp);
      kp::poly::reset_transform_stats();
      kp::util::WallTimer wt;
      auto sol = kp::core::wiedemann_solve(g, box, b, p3, 1u << 30);
      const double ms = wt.elapsed_ms();
      const auto tstats = kp::poly::transform_stats();
      const bool ok = sol && *sol == x;
      all_ok = all_ok && ok;
      tb.add_row({std::to_string(n), kp::util::Table::num(ms, 2),
                  kp::util::Table::num(tstats.forward),
                  kp::util::Table::num(tstats.forward_avoided),
                  ok ? "ok" : "FAIL"});
      report.begin_row("wiedemann_toeplitz_cache");
      report.put("n", n);
      report.put("wall_ms", ms);
      report.put("forward_ntt", tstats.forward);
      report.put("transforms_avoided", tstats.forward_avoided);
      report.put("check", ok);
    }
    tb.print();
  }

  // Block-Wiedemann width sweep: one large sparse solve, b = 1 (the scalar
  // iterative route -- block_wiedemann_solve_status delegates) against
  // b in {2, 4, 8, 16}.  Blocking cuts the finish from n to ~n/b products
  // and streams each CSR row stripe once per block instead of once per
  // vector; the price is the b x b projection batches and the sigma-basis.
  // Every block answer must equal the scalar route's answer exactly.
  std::printf("\nBlock-Wiedemann width sweep (BENCH_block_wiedemann.json)\n\n");
  {
    kp::util::BenchReport breport("block_wiedemann");
    const std::size_t n = 2048, per_row = 64;
    kp::util::Prng psetup(90210);
    auto sp = kp::matrix::Sparse<F>::random(f, n, per_row, psetup);
    std::vector<F::Element> x_true(n);
    for (auto& e : x_true) e = f.random(psetup);
    const auto b = sp.apply(f, x_true);
    kp::matrix::SparseBox<F> box(f, sp);

    kp::util::Table ts({"b", "wall ms", "speedup vs b=1", "ops", "check"});
    double base_ms = 0.0;
    std::vector<F::Element> base_x;
    for (std::size_t bw : {1u, 2u, 4u, 8u, 16u}) {
      kp::util::Prng p(7117);  // same projection stream for every width
      kp::util::WallTimer wt;
      kp::util::OpScope s;
      auto res = kp::core::block_wiedemann_solve_status(f, box, b, p,
                                                        1u << 30, bw);
      const double ms = wt.elapsed_ms();
      const auto ops = s.counts().total();
      bool ok = res.ok && sp.apply(f, res.x) == b;
      if (bw == 1) {
        base_ms = ms;
        base_x = res.x;
        ok = ok && res.x == x_true;
      } else {
        ok = ok && res.x == base_x;  // identical to the scalar route
      }
      all_ok = all_ok && ok;
      const double speedup = ms > 0.0 ? base_ms / ms : 0.0;
      ts.add_row({std::to_string(bw), kp::util::Table::num(ms, 2),
                  kp::util::Table::num(speedup, 3), kp::util::Table::num(ops),
                  ok ? "ok" : "FAIL"});
      breport.begin_row("block_width_sweep");
      breport.put("n", n);
      breport.put("nnz_per_row", per_row);
      breport.put("block_width", bw);
      breport.put("wall_ms", ms);
      breport.put("speedup_vs_b1", speedup);
      breport.put("ops", ops);
      breport.put("attempts", res.attempts);
      breport.put("check", ok);
    }
    ts.print();
    std::printf("\nb = 1 is the scalar iterative route; block answers are\n"
                "cross-checked element-for-element against it.\n");
  }

  if (!all_ok) std::printf("\nFAIL: at least one cross-check mismatched\n");
  return all_ok ? 0 : 1;
}

// Experiment E8 (Theorem 6): the inverse circuit -- the gradient of the
// determinant circuit divided by the determinant -- stays within the
// Theorem-4 size/depth bounds and computes A^{-1} whenever the evaluation
// avoids division by zero.
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "circuit/tape.h"
#include "circuit/tape_eval.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "util/bench_json.h"
#include "util/prng.h"
#include "util/tables.h"


namespace {
/// Last points of a series: the asymptotic regime (the NTT bivariate kernel
/// engages from n = 8, so small-n points measure a different kernel).
[[maybe_unused]] std::vector<double> tail(const std::vector<double>& v) {
  const std::size_t keep = v.size() > 3 ? 3 : v.size();
  return {v.end() - static_cast<std::ptrdiff_t>(keep), v.end()};
}
}  // namespace

using F = kp::field::GFp;

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(99);
  kp::util::BenchReport report("inverse");

  std::printf("E8 (Theorem 6): inverse circuit = d(det)/dA / det\n\n");
  kp::util::Table t({"n", "det size", "det depth", "inv size", "inv depth",
                     "size ratio", "depth ratio", "eval check"});
  std::vector<double> ns, sizes, depths;
  for (std::size_t n : {2u, 3u, 4u, 6u, 8u, 12u}) {
    kp::util::WallTimer wt;
    auto det = kp::circuit::build_det_circuit(n, kp::field::kNttPrime);
    auto inv = kp::circuit::build_inverse_circuit(n, kp::field::kNttPrime);
    const auto tape = kp::circuit::compile(inv);
    const kp::circuit::TapeEvaluator<F> ev(f, tape);

    // Evaluate through the compiled tape on a random non-singular matrix
    // and verify against Gauss, with node-at-a-time evaluate() as the
    // checked reference for the tape path.
    std::string check = "-";
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    auto ref = kp::matrix::inverse_gauss(f, a);
    if (ref) {
      check = "FAIL";
      for (int attempt = 0; attempt < 5; ++attempt) {
        std::vector<F::Element> rnd(inv.num_randoms());
        for (auto& e : rnd) e = f.sample(prng, 1u << 20);
        std::vector<std::vector<F::Element>> in_lanes, rnd_lanes;
        for (auto v : a.data()) in_lanes.push_back({v});
        for (auto v : rnd) rnd_lanes.push_back({v});
        auto res = ev.evaluate(in_lanes, rnd_lanes);
        if (!res.status.ok()) continue;  // unlucky draw
        auto node = inv.evaluate(f, {a.data().begin(), a.data().end()}, rnd);
        bool good = node.ok;
        for (std::size_t i = 0; i < n && good; ++i) {
          for (std::size_t j = 0; j < n && good; ++j) {
            good = f.eq(res.outputs[i * n + j][0], ref->at(i, j)) &&
                   f.eq(node.outputs[i * n + j], res.outputs[i * n + j][0]);
          }
        }
        check = good ? "ok" : "FAIL";
        break;
      }
    }

    ns.push_back(static_cast<double>(n));
    sizes.push_back(static_cast<double>(inv.size()));
    depths.push_back(static_cast<double>(inv.depth()));
    report.begin_row("inverse_circuit");
    report.put("n", n);
    report.put("det_size", std::uint64_t{det.size()});
    report.put("det_depth", static_cast<std::uint64_t>(det.depth()));
    report.put("inv_size", std::uint64_t{inv.size()});
    report.put("inv_depth", static_cast<std::uint64_t>(inv.depth()));
    report.put("tape_instrs", std::uint64_t{tape.num_instrs()});
    report.put("tape_levels", std::uint64_t{tape.num_levels()});
    report.put("eval_check", check);
    report.put("wall_ms", wt.elapsed_ms());
    t.add_row({std::to_string(n), kp::util::Table::num(std::uint64_t{det.size()}),
               std::to_string(det.depth()),
               kp::util::Table::num(std::uint64_t{inv.size()}),
               std::to_string(inv.depth()),
               kp::util::Table::num(
                   static_cast<double>(inv.size()) / static_cast<double>(det.size()), 3),
               kp::util::Table::num(static_cast<double>(inv.depth()) /
                                        static_cast<double>(det.depth()),
                                    3),
               check});
  }
  t.print();
  // Theorem 6's claim is the RATIO to the determinant circuit (the absolute
  // growth is whatever the det circuit costs); the ratio columns above are
  // the reproduced quantities.
  (void)ns;
  (void)sizes;
  (void)depths;
  std::printf(
      "\nTheorem 6: size ratio <= ~4 + n^2 division overhead, depth ratio O(1);\n"
      "n^2 outputs computed at asymptotically the cost of ONE determinant.\n");
  return 0;
}

// Black-box backend crossover (the LinOp re-plumb of the Theorem-4 solver).
//
// Reported series: for a sparse n x n system with O(n) nonzeros, wall-clock
// and field-op counts of
//   1. the dense pipeline (DenseBox -> doubling route (9), O(n^omega log n)),
//   2. the sparse black-box pipeline (SparseBox -> iterative route (8),
//      ~2n products of O(nnz) each, i.e. ~O(n^2) total for nnz = O(n)).
// Both must return identical solutions and determinants for the same seed
// (exact arithmetic: the routes compute the same field elements); the bench
// exits non-zero on any mismatch.  The sparse route must win on wall-clock
// from well below n = 256 -- this is the O(n^3) -> ~O(n^2) payoff of
// keeping A behind the LinOp abstraction.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/solver.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/sparse.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

// NTT-friendly prime so the shared Theorem-3 stage (bivariate series
// Newton iteration) runs at M(n) = n log n; under a Karatsuba-only prime
// that stage dominates both pipelines and hides the Krylov-route gap.
using F = kp::field::GFp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  F f(kp::field::kNttPrime);
  kp::util::BenchReport report("blackbox_solver");
  std::printf("Black-box solver crossover: dense doubling vs sparse iterative\n");
  std::printf("(sparse n x n, ~4n nonzeros; identical results required)\n\n");

  kp::util::Table t({"n", "nnz", "dense s", "sparse s", "speedup", "dense ops",
                     "sparse ops", "op ratio"});
  bool sparse_wins_at_256 = false;
  for (std::size_t n : {64u, 128u, 256u, 384u}) {
    kp::util::Prng gen(n);
    const auto sp = kp::matrix::Sparse<F>::random(f, n, 3, gen);
    const auto dense = sp.to_dense(f);
    std::vector<F::Element> x(n);
    for (auto& e : x) e = f.random(gen);
    const auto b = sp.apply(f, x);

    const std::uint64_t seed = 1000 + n;

    kp::util::Prng p1(seed);
    kp::util::OpScope s1;
    const auto t1 = std::chrono::steady_clock::now();
    const auto dense_res = kp::core::kp_solve(f, dense, b, p1);
    const double dense_s = seconds_since(t1);
    const auto dense_ops = s1.counts().total();

    kp::util::Prng p2(seed);
    const kp::matrix::SparseBox<F> sbox(f, sp);
    kp::util::OpScope s2;
    const auto t2 = std::chrono::steady_clock::now();
    const auto sparse_res = kp::core::kp_solve(f, sbox, b, p2);
    const double sparse_s = seconds_since(t2);
    const auto sparse_ops = s2.counts().total();

    if (!dense_res.ok || !sparse_res.ok) {
      std::printf("FAILURE: pipeline unlucky at n=%zu (dense ok=%d sparse ok=%d)\n",
                  n, dense_res.ok, sparse_res.ok);
      return 1;
    }
    if (dense_res.x != sparse_res.x || !f.eq(dense_res.det, sparse_res.det) ||
        dense_res.x != x) {
      std::printf("MISMATCH at n=%zu: backends disagree\n", n);
      return 1;
    }
    if (n == 256 && sparse_s < dense_s) sparse_wins_at_256 = true;
    report.begin_row("crossover");
    report.put("n", n);
    report.put("nnz", sp.nnz());
    report.put("dense_wall_ms", dense_s * 1e3);
    report.put("sparse_wall_ms", sparse_s * 1e3);
    report.put("dense_ops", dense_ops);
    report.put("sparse_ops", sparse_ops);

    t.add_row({std::to_string(n), std::to_string(sp.nnz()),
               kp::util::Table::num(dense_s, 3), kp::util::Table::num(sparse_s, 3),
               kp::util::Table::num(dense_s / sparse_s, 1),
               kp::util::Table::num(dense_ops), kp::util::Table::num(sparse_ops),
               kp::util::Table::num(static_cast<double>(dense_ops) /
                                        static_cast<double>(sparse_ops),
                                    1)});
  }
  t.print();
  std::printf("\nidentical solutions and determinants across backends: yes\n");
  if (!sparse_wins_at_256) {
    std::printf("FAILURE: sparse route did not beat dense at n=256\n");
    return 1;
  }
  std::printf("sparse black-box route beats dense pipeline at n=256: yes\n");
  return 0;
}

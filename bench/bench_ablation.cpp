// Ablations of the design choices DESIGN.md calls out:
//   A1. polynomial multiplication kernel: schoolbook / Karatsuba / NTT
//   A2. matrix multiplication black box: classical vs Strassen
//   A3. Newton identities: O(n^2) triangular solve vs power-series exp
//   A4. Krylov sequence: doubling (9) vs 2n sequential products
//   A5. Toeplitz solve finish: iterated applies vs doubling (depth_optimal)
#include <cstdio>
#include <vector>

#include "core/krylov.h"
#include "core/solver.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/matmul.h"
#include "poly/poly.h"
#include "seq/newton_identities.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

using FN = kp::field::GFp;  // runtime modulus: NTT-friendly prime

int main() {
  FN f(kp::field::kNttPrime);
  kp::util::Prng prng(123);
  kp::util::BenchReport report("ablation");

  std::printf("A1: polynomial multiplication kernels (field ops, equal inputs)\n\n");
  kp::util::Table t1({"deg", "schoolbook", "karatsuba", "ntt"});
  for (std::size_t deg : {32u, 128u, 512u, 2048u}) {
    kp::util::WallTimer wt;
    kp::poly::PolyRing<FN> school(f, kp::poly::MulStrategy::kSchoolbook);
    kp::poly::PolyRing<FN> karat(f, kp::poly::MulStrategy::kKaratsuba);
    kp::poly::PolyRing<FN> ntt(f, kp::poly::MulStrategy::kNtt);
    auto a = school.random_degree(prng, static_cast<std::int64_t>(deg));
    auto b = school.random_degree(prng, static_cast<std::int64_t>(deg));
    kp::util::OpScope s1;
    auto r1 = school.mul(a, b);
    const auto o1 = s1.counts().total();
    kp::util::OpScope s2;
    auto r2 = karat.mul(a, b);
    const auto o2 = s2.counts().total();
    kp::util::OpScope s3;
    auto r3 = ntt.mul(a, b);
    const auto o3 = s3.counts().total();
    if (!school.eq(r1, r2) || !school.eq(r1, r3)) {
      std::printf("MISMATCH deg=%zu\n", deg);
      return 1;
    }
    t1.add_row({std::to_string(deg), kp::util::Table::num(o1),
                kp::util::Table::num(o2), kp::util::Table::num(o3)});
    report.begin_row("A1_polymul");
    report.put("deg", deg);
    report.put("ops_schoolbook", o1);
    report.put("ops_karatsuba", o2);
    report.put("ops_ntt", o3);
    report.put("wall_ms", wt.elapsed_ms());
  }
  t1.print();

  std::printf("\nA2: matrix multiplication black box (field ops)\n\n");
  kp::util::Table t2({"n", "classical", "strassen(thresh 16)", "ratio"});
  for (std::size_t n : {32u, 64u, 128u}) {
    kp::util::WallTimer wt;
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    auto b = kp::matrix::random_matrix(f, n, n, prng);
    kp::util::OpScope s1;
    auto c1 = kp::matrix::mat_mul(f, a, b, kp::matrix::MatMulStrategy::kClassical);
    const auto o1 = s1.counts().total();
    kp::util::OpScope s2;
    auto c2 = kp::matrix::mat_mul(f, a, b, kp::matrix::MatMulStrategy::kStrassen, 16);
    const auto o2 = s2.counts().total();
    if (!kp::matrix::mat_eq(f, c1, c2)) {
      std::printf("MISMATCH n=%zu\n", n);
      return 1;
    }
    t2.add_row({std::to_string(n), kp::util::Table::num(o1), kp::util::Table::num(o2),
                kp::util::Table::num(static_cast<double>(o2) / static_cast<double>(o1), 3)});
    report.begin_row("A2_matmul");
    report.put("n", n);
    report.put("ops_classical", o1);
    report.put("ops_strassen", o2);
    report.put("wall_ms", wt.elapsed_ms());
  }
  t2.print();

  std::printf("\nA3: Newton identities (power sums -> charpoly), field ops\n\n");
  kp::util::Table t3({"n", "triangular O(n^2)", "series exp"});
  for (std::size_t n : {32u, 128u, 512u, 1024u}) {
    kp::util::WallTimer wt;
    std::vector<FN::Element> s(n);
    // Power sums of a random monic polynomial (valid inputs).
    std::vector<FN::Element> p(n + 1);
    for (std::size_t i = 0; i < n; ++i) p[i] = f.random(prng);
    p[n] = f.one();
    s = kp::seq::power_sums_from_charpoly(f, p, n);
    kp::util::OpScope s1;
    auto c1 = kp::seq::charpoly_from_power_sums(
        f, s, kp::seq::NewtonIdentityMethod::kTriangularSolve);
    const auto o1 = s1.counts().total();
    kp::util::OpScope s2;
    auto c2 = kp::seq::charpoly_from_power_sums(
        f, s, kp::seq::NewtonIdentityMethod::kPowerSeriesExp);
    const auto o2 = s2.counts().total();
    if (c1 != c2) {
      std::printf("MISMATCH n=%zu\n", n);
      return 1;
    }
    t3.add_row({std::to_string(n), kp::util::Table::num(o1), kp::util::Table::num(o2)});
    report.begin_row("A3_newton");
    report.put("n", n);
    report.put("ops_triangular", o1);
    report.put("ops_series_exp", o2);
    report.put("wall_ms", wt.elapsed_ms());
  }
  t3.print();

  std::printf("\nA4: Krylov sequence u A^i v, i < 2n (field ops)\n\n");
  kp::util::Table t4({"n", "doubling (9)", "iterative 2n matvecs", "ratio"});
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    kp::util::WallTimer wt;
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    std::vector<FN::Element> u(n), v(n);
    for (auto& e : u) e = f.random(prng);
    for (auto& e : v) e = f.random(prng);
    kp::util::OpScope s1;
    auto seq1 = kp::core::krylov_sequence_doubling(f, a, u, v, 2 * n);
    const auto o1 = s1.counts().total();
    kp::matrix::DenseBox<FN> box(f, a);
    kp::util::OpScope s2;
    auto seq2 = kp::matrix::krylov_sequence_iterative(f, box, u, v, 2 * n);
    const auto o2 = s2.counts().total();
    if (seq1 != seq2) {
      std::printf("MISMATCH n=%zu\n", n);
      return 1;
    }
    t4.add_row({std::to_string(n), kp::util::Table::num(o1), kp::util::Table::num(o2),
                kp::util::Table::num(static_cast<double>(o1) / static_cast<double>(o2), 3)});
    report.begin_row("A4_krylov");
    report.put("n", n);
    report.put("ops_doubling", o1);
    report.put("ops_iterative", o2);
    report.put("wall_ms", wt.elapsed_ms());
  }
  t4.print();
  std::printf("\nDoubling pays ~log n extra work to win O(log^2 n) depth --\n"
              "exactly the paper's trade.\n");

  std::printf("\nA5: full solve, sequential finishes vs depth-optimal finishes\n\n");
  kp::util::Table t5({"n", "work-optimal ops", "depth-optimal ops", "ratio"});
  for (std::size_t n : {16u, 32u, 64u}) {
    kp::util::WallTimer wt;
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    std::vector<FN::Element> b(n);
    for (auto& e : b) e = f.random(prng);
    kp::core::SolverOptions seqopt;
    kp::core::SolverOptions depopt;
    depopt.depth_optimal = true;
    depopt.newton = kp::seq::NewtonIdentityMethod::kPowerSeriesExp;
    kp::util::OpScope s1;
    auto r1 = kp::core::kp_solve(f, a, b, prng, seqopt);
    const auto o1 = s1.counts().total();
    kp::util::OpScope s2;
    auto r2 = kp::core::kp_solve(f, a, b, prng, depopt);
    const auto o2 = s2.counts().total();
    if (!r1.ok || !r2.ok || r1.x != r2.x) {
      std::printf("solve mismatch/failure n=%zu\n", n);
      continue;
    }
    t5.add_row({std::to_string(n), kp::util::Table::num(o1), kp::util::Table::num(o2),
                kp::util::Table::num(static_cast<double>(o2) / static_cast<double>(o1), 3)});
    report.begin_row("A5_solve");
    report.put("n", n);
    report.put("ops_work_optimal", o1);
    report.put("ops_depth_optimal", o2);
    report.put("wall_ms", wt.elapsed_ms());
  }
  t5.print();
  return 0;
}

// Experiment E15 (section 5, Sylvester extension): resultants and
// polynomial GCDs through structured linear algebra.
//
// The paper: the Toeplitz machinery "extends to structured Toeplitz-like
// matrices such as Sylvester matrices", giving parallel GCD computation.
// Reported: correctness of the linear-algebra GCD against the Euclidean
// algorithm across degree profiles; work of the resultant through the
// randomized determinant vs elimination; the O(M(n)) structured product.
#include <cstdio>
#include <vector>

#include "core/poly_gcd.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "matrix/sylvester.h"
#include "poly/poly.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::GFp;

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(15);
  kp::util::BenchReport report("sylvester");
  kp::poly::PolyRing<F> ring(f);

  auto random_monic = [&](std::size_t deg) {
    auto p = ring.random_degree(prng, static_cast<std::int64_t>(deg) - 1);
    p.resize(deg + 1, f.zero());
    p[deg] = f.one();
    return p;
  };

  std::printf("E15 (section 5): polynomial GCD via Sylvester linear algebra\n\n");
  kp::util::Table t({"deg f", "deg g", "deg gcd", "linalg ops", "euclid ops",
                     "agree"});
  for (std::size_t d : {0u, 2u, 5u, 10u}) {
    for (std::size_t extra : {5u, 15u}) {
      kp::util::WallTimer wt;
      auto h = random_monic(d);
      auto pf = ring.mul(h, random_monic(extra));
      auto pg = ring.mul(h, random_monic(extra + 3));

      kp::util::OpScope s1;
      auto lin = kp::core::gcd_via_linear_algebra(ring, pf, pg, prng);
      const auto ops1 = s1.counts().total();

      kp::util::OpScope s2;
      auto euclid = ring.gcd(pf, pg);
      const auto ops2 = s2.counts().total();

      t.add_row({std::to_string(pf.size() - 1), std::to_string(pg.size() - 1),
                 std::to_string(euclid.size() - 1), kp::util::Table::num(ops1),
                 kp::util::Table::num(ops2),
                 ring.eq(lin, euclid) ? "yes" : "NO"});
      report.begin_row("gcd");
      report.put("deg_f", pf.size() - 1);
      report.put("deg_g", pg.size() - 1);
      report.put("ops_linalg", ops1);
      report.put("ops_euclid", ops2);
      report.put("agree", ring.eq(lin, euclid));
      report.put("wall_ms", wt.elapsed_ms());
    }
  }
  t.print();
  std::printf(
      "\nThe Euclidean algorithm is the cheap sequential route (depth ~n);\n"
      "the linear-algebra route is what parallelizes: its core is one\n"
      "structured solve + one rank, both NC^2 by Theorems 3/4.\n\n");

  std::printf("Resultants: randomized determinant vs elimination\n\n");
  kp::util::Table tr({"deg", "kp ops", "gauss ops", "agree"});
  for (std::size_t d : {4u, 8u, 16u, 24u}) {
    kp::util::WallTimer wt;
    auto pf = random_monic(d);
    auto pg = random_monic(d - 1);
    kp::matrix::Sylvester<F> s(ring, pf, pg);

    kp::util::OpScope s1;
    auto r1 = kp::core::resultant_randomized(f, s, prng);
    const auto ops1 = s1.counts().total();
    kp::util::OpScope s2;
    auto r2 = kp::core::resultant_gauss(f, s);
    const auto ops2 = s2.counts().total();
    tr.add_row({std::to_string(d), kp::util::Table::num(ops1),
                kp::util::Table::num(ops2), f.eq(r1, r2) ? "yes" : "NO"});
    report.begin_row("resultant");
    report.put("deg", d);
    report.put("ops_kp", ops1);
    report.put("ops_gauss", ops2);
    report.put("agree", f.eq(r1, r2));
    report.put("wall_ms", wt.elapsed_ms());
  }
  tr.print();

  std::printf("\nStructured product S^T x: two polynomial multiplications\n\n");
  kp::util::Table ts({"dim", "structured ops", "dense ops", "ratio"});
  for (std::size_t d : {16u, 32u, 64u, 128u}) {
    auto pf = random_monic(d);
    auto pg = random_monic(d);
    kp::matrix::Sylvester<F> s(ring, pf, pg);
    std::vector<F::Element> x(s.dim());
    for (auto& e : x) e = f.random(prng);

    kp::util::OpScope s1;
    auto y1 = s.apply_transpose(x);
    const auto ops1 = s1.counts().total();

    auto dense = kp::matrix::mat_transpose(f, s.to_dense(f));
    kp::util::OpScope s2;
    auto y2 = kp::matrix::mat_vec(f, dense, x);
    const auto ops2 = s2.counts().total();
    if (y1 != y2) {
      std::printf("MISMATCH at d=%zu\n", d);
      return 1;
    }
    report.begin_row("structured_apply");
    report.put("dim", s.dim());
    report.put("ops_structured", ops1);
    report.put("ops_dense", ops2);
    ts.add_row({std::to_string(s.dim()), kp::util::Table::num(ops1),
                kp::util::Table::num(ops2),
                kp::util::Table::num(static_cast<double>(ops1) /
                                         static_cast<double>(ops2),
                                     3)});
  }
  ts.print();
  return 0;
}

// Tape engine benchmark: compiled batch evaluation vs node-at-a-time
// Circuit::evaluate on the paper's circuits (Theorem-4 solver, Theorem-6
// inverse, Theorem-3 Toeplitz charpoly).
//
// For each circuit the bench reports the DAG -> tape compilation stats
// (instructions after DCE, levels, register slots, pooled constants) and,
// per batch size B, the per-input wall time of both paths plus the
// speedup.  The two paths' outputs are checksummed against each other for
// every lane; any mismatch exits non-zero (the bench doubles as an
// end-to-end identity check).
#include <cstdint>
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "circuit/tape.h"
#include "circuit/tape_eval.h"
#include "field/zp.h"
#include "util/bench_json.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::GFp;

namespace {

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct BatchDraw {
  std::vector<std::vector<std::uint64_t>> in, rnd;
};

/// Draws B lanes that evaluate cleanly (retrying unlucky random columns is
/// cheap at p ~ 2^57; in practice the first draw succeeds).
BatchDraw draw_clean(const F& f, const kp::circuit::Circuit& c,
                     const kp::circuit::Tape& t, std::size_t B,
                     kp::util::Prng& prng) {
  const kp::circuit::TapeEvaluator<F> ev(f, t);
  for (int attempt = 0; attempt < 5; ++attempt) {
    BatchDraw d;
    d.in.resize(c.num_inputs());
    d.rnd.resize(c.num_randoms());
    for (auto& v : d.in) {
      v.resize(B);
      for (auto& x : v) x = f.random(prng);
    }
    for (auto& v : d.rnd) {
      v.resize(B);
      for (auto& x : v) x = f.random(prng);
    }
    if (ev.evaluate(d.in, d.rnd).status.ok()) return d;
  }
  std::fprintf(stderr, "could not draw a clean batch\n");
  std::exit(2);
}

}  // namespace

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(4242);
  kp::util::BenchReport report("tape");

  std::printf("Tape engine: compiled SoA batch evaluation vs node-at-a-time\n\n");

  struct Case {
    const char* name;
    std::size_t n;
    kp::circuit::Circuit c;
  };
  Case cases[] = {
      {"solver", 4, kp::circuit::build_solver_circuit(4, kp::field::kNttPrime)},
      {"solver", 8, kp::circuit::build_solver_circuit(8, kp::field::kNttPrime)},
      {"inverse", 4,
       kp::circuit::build_inverse_circuit(4, kp::field::kNttPrime)},
      {"toeplitz_charpoly", 8,
       kp::circuit::build_toeplitz_charpoly_circuit(8, kp::field::kNttPrime)},
  };

  kp::util::Table tbl({"circuit", "n", "dag size", "instrs", "levels", "regs",
                       "B", "node us/in", "tape us/in", "speedup"});
  bool all_ok = true;

  for (auto& cs : cases) {
    const kp::circuit::Tape t = kp::circuit::compile(cs.c);
    const kp::circuit::TapeEvaluator<F> ev(f, t);
    for (std::size_t B : {std::size_t{1}, std::size_t{16}, std::size_t{256}}) {
      const BatchDraw d = draw_clean(f, cs.c, t, B, prng);

      // Reference path: node-at-a-time, once per lane.  Checksum both
      // paths' outputs lane by lane -- identity is part of the bench.
      std::uint64_t ref_sum = 0xcbf29ce484222325ULL;
      kp::util::WallTimer wt_node;
      for (std::size_t lane = 0; lane < B; ++lane) {
        std::vector<std::uint64_t> in1, rnd1;
        in1.reserve(d.in.size());
        rnd1.reserve(d.rnd.size());
        for (const auto& v : d.in) in1.push_back(v[lane]);
        for (const auto& v : d.rnd) rnd1.push_back(v[lane]);
        const auto ref = cs.c.evaluate(f, in1, rnd1);
        if (!ref.ok) {
          std::fprintf(stderr, "reference eval failed\n");
          return 2;
        }
        for (std::uint64_t v : ref.outputs) ref_sum = fnv1a_mix(ref_sum, v);
      }
      const double node_ms = wt_node.elapsed_ms();

      // Tape path: whole batch per pass; repeat to stabilize the clock.
      const int reps = B >= 256 ? 8 : 32;
      std::uint64_t tape_sum = 0;
      kp::util::WallTimer wt_tape;
      for (int r = 0; r < reps; ++r) {
        const auto res = ev.evaluate(d.in, d.rnd);
        if (!res.status.ok()) {
          std::fprintf(stderr, "tape eval failed: %s\n",
                       res.status.message().c_str());
          return 2;
        }
        tape_sum = 0xcbf29ce484222325ULL;
        for (std::size_t lane = 0; lane < B; ++lane) {
          for (const auto& out : res.outputs) {
            tape_sum = fnv1a_mix(tape_sum, out[lane]);
          }
        }
      }
      const double tape_ms = wt_tape.elapsed_ms() / reps;

      // The reference checksum folds outputs lane-major (all outputs of
      // lane 0, then lane 1, ...); fold the tape outputs the same way.
      if (tape_sum != ref_sum) {
        std::fprintf(stderr, "CHECKSUM MISMATCH %s n=%zu B=%zu\n", cs.name,
                     cs.n, B);
        all_ok = false;
      }

      const double node_per = node_ms * 1e3 / static_cast<double>(B);
      const double tape_per = tape_ms * 1e3 / static_cast<double>(B);
      const double speedup = node_per / tape_per;

      report.begin_row("tape_vs_node");
      report.put("circuit", cs.name);
      report.put("n", std::uint64_t{cs.n});
      report.put("dag_size", t.source_size);
      report.put("dag_depth", static_cast<std::uint64_t>(t.source_depth));
      report.put("instrs", std::uint64_t{t.num_instrs()});
      report.put("levels", std::uint64_t{t.num_levels()});
      report.put("regs", static_cast<std::uint64_t>(t.num_regs));
      report.put("constants_pooled", std::uint64_t{t.constants.size()});
      report.put("B", std::uint64_t{B});
      report.put("node_us_per_input", node_per);
      report.put("tape_us_per_input", tape_per);
      report.put("speedup", speedup);
      report.put("checksum_ok", tape_sum == ref_sum);

      tbl.add_row({cs.name, std::to_string(cs.n),
                   kp::util::Table::num(t.source_size),
                   kp::util::Table::num(std::uint64_t{t.num_instrs()}),
                   std::to_string(t.num_levels()),
                   std::to_string(t.num_regs), std::to_string(B),
                   kp::util::Table::num(node_per, 2),
                   kp::util::Table::num(tape_per, 2),
                   kp::util::Table::num(speedup, 2)});
    }
  }
  tbl.print();
  std::printf(
      "\nper-input speedup of compiled SoA batch evaluation; identity with\n"
      "node-at-a-time evaluate() is checksummed per lane (exit 1 on drift).\n");
  return all_ok ? 0 : 1;
}

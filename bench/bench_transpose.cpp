// Experiment E9 (section 4): solving the TRANSPOSED system from a solver
// circuit at 4x the length and O(1)x the depth, and the transposed-
// Vandermonde special case (transposed solving <-> interpolation).
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "circuit/tape.h"
#include "circuit/tape_eval.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "matrix/structured.h"
#include "poly/poly.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::GFp;

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(31337);
  kp::util::BenchReport report("transpose");

  std::printf("E9 (section 4): transposed-system circuits\n\n");
  kp::util::Table t({"n", "solver size", "solver depth", "transposed size",
                     "transposed depth", "size ratio", "depth ratio", "eval"});
  for (std::size_t n : {2u, 3u, 4u, 6u, 8u}) {
    kp::util::WallTimer wt;
    auto solver = kp::circuit::build_solver_circuit(n, kp::field::kNttPrime);
    auto trans = kp::circuit::build_transposed_solver_circuit(n, kp::field::kNttPrime);

    // Evaluate through the compiled tape: outputs must solve A^T y = b,
    // and must match node-at-a-time evaluate() (the checked reference).
    const auto tape = kp::circuit::compile(trans);
    const kp::circuit::TapeEvaluator<F> ev(f, tape);
    std::string check = "-";
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    if (!f.is_zero(kp::matrix::det_gauss(f, a))) {
      std::vector<F::Element> b(n);
      for (auto& e : b) e = f.random(prng);
      std::vector<F::Element> in(a.data().begin(), a.data().end());
      std::vector<F::Element> xdummy(n, f.one());
      in.insert(in.end(), xdummy.begin(), xdummy.end());
      in.insert(in.end(), b.begin(), b.end());
      check = "FAIL";
      for (int attempt = 0; attempt < 5; ++attempt) {
        std::vector<F::Element> rnd(trans.num_randoms());
        for (auto& e : rnd) e = f.sample(prng, 1u << 20);
        std::vector<std::vector<F::Element>> in_lanes, rnd_lanes;
        for (auto v : in) in_lanes.push_back({v});
        for (auto v : rnd) rnd_lanes.push_back({v});
        auto res = ev.evaluate(in_lanes, rnd_lanes);
        if (!res.status.ok()) continue;
        auto node = trans.evaluate(f, in, rnd);
        std::vector<F::Element> y(res.outputs.size());
        bool identical = node.ok;
        for (std::size_t i = 0; i < y.size(); ++i) {
          y[i] = res.outputs[i][0];
          identical = identical && f.eq(node.outputs[i], y[i]);
        }
        auto atx = kp::matrix::mat_vec(f, kp::matrix::mat_transpose(f, a), y);
        check = (identical && atx == b) ? "ok" : "FAIL";
        break;
      }
    }

    report.begin_row("E9_circuit");
    report.put("n", n);
    report.put("solver_size", std::uint64_t{solver.size()});
    report.put("solver_depth", static_cast<std::uint64_t>(solver.depth()));
    report.put("transposed_size", std::uint64_t{trans.size()});
    report.put("transposed_depth", static_cast<std::uint64_t>(trans.depth()));
    report.put("eval_check", check);
    report.put("wall_ms", wt.elapsed_ms());
    t.add_row({std::to_string(n), kp::util::Table::num(std::uint64_t{solver.size()}),
               std::to_string(solver.depth()),
               kp::util::Table::num(std::uint64_t{trans.size()}),
               std::to_string(trans.depth()),
               kp::util::Table::num(static_cast<double>(trans.size()) /
                                        static_cast<double>(solver.size()),
                                    3),
               kp::util::Table::num(static_cast<double>(trans.depth()) /
                                        static_cast<double>(solver.depth()),
                                    3),
               check});
  }
  t.print();
  std::printf("\nSection 4 predicts size ratio <= ~4 and depth ratio O(1).\n\n");

  // --- Transposed Vandermonde: the paper's "fast transposed Vandermonde
  // system solver based on fast polynomial interpolation". -----------------
  std::printf("Transposed Vandermonde check (V c = values solved by interpolation\n"
              "vs V^T y = b solved by Gaussian elimination; both verified):\n\n");
  kp::poly::PolyRing<F> ring(f);
  kp::util::Table tv({"n", "interp ops (V c = v)", "gauss ops (V^T y = b)", "both correct"});
  for (std::size_t n : {8u, 16u, 32u, 64u}) {
    std::vector<F::Element> pts(n);
    for (std::size_t i = 0; i < n; ++i) pts[i] = static_cast<F::Element>(3 * i + 1);
    kp::matrix::Vandermonde<F> v(pts);

    std::vector<F::Element> coeffs(n), b(n);
    for (auto& e : coeffs) e = f.random(prng);
    for (auto& e : b) e = f.random(prng);

    kp::util::OpScope s1;
    auto sol1 = v.solve(ring, v.apply(f, coeffs));
    const auto ops1 = s1.counts().total();

    kp::util::OpScope s2;
    auto dense_t = kp::matrix::mat_transpose(f, v.to_dense(f));
    auto sol2 = kp::matrix::solve_gauss(f, dense_t, b);
    const auto ops2 = s2.counts().total();

    const bool ok1 = sol1 == coeffs;
    const bool ok2 = sol2 && v.apply_transpose(f, *sol2) == b;
    tv.add_row({std::to_string(n), kp::util::Table::num(ops1),
                kp::util::Table::num(ops2), (ok1 && ok2) ? "yes" : "NO"});
    report.begin_row("vandermonde");
    report.put("n", n);
    report.put("ops_interp", ops1);
    report.put("ops_gauss", ops2);
    report.put("check", ok1 && ok2);
  }
  tv.print();
  std::printf("\nInterpolation-based solving is the O(n^2)->O(M(n) log n) fast path the\n"
              "section-4 transform generalizes to arbitrary matrices.\n");
  return 0;
}

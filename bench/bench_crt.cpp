// Multi-prime CRT sharding vs the generic Rational route.
//
// Three series, all over dense n x n systems with small rational entries:
//
//   * shard sweep       -- shards used / wall time of the CRT route per n,
//                          with and without early termination (the without-ET
//                          rows run to the full Hadamard-bound prime budget);
//   * et ablation       -- the same pair read as a ratio: what stopping at a
//                          stabilized-and-verified answer saves;
//   * speedup vs generic -- the CRT route against fraction-arithmetic
//                          Gaussian elimination over Q (matrix::solve_gauss
//                          on RationalField), the cheaper of the two generic
//                          baselines: kp_solve over Q pays the same entry
//                          blowup on a longer pipeline, so the speedups
//                          reported here are conservative.
//
// Every CRT answer is cross-checked entry-by-entry against the generic
// solver's answer (both are exact, so equality is exact) and the binary
// exits non-zero on any mismatch -- CI runs this as a correctness smoke
// test in --quick mode (small sizes only); the committed BENCH_crt.json
// comes from a full run that includes n = 512.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/crt_shard.h"
#include "field/rational.h"
#include "matrix/dense.h"
#include "matrix/gauss.h"
#include "util/bench_json.h"
#include "util/prng.h"
#include "util/tables.h"

namespace {

using kp::field::Rational;
using kp::field::RationalField;
using kp::matrix::Matrix;

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("MISMATCH: %s\n", what);
    ++failures;
  }
}

/// Dense system with single-digit entries and a small integer solution, so
/// the answer itself is reconstruction-friendly (the early-termination
/// sweet spot) while the generic route still pays full intermediate
/// fraction blowup during elimination.
struct Problem {
  Matrix<RationalField> a;
  std::vector<Rational> b;
  std::vector<Rational> x_true;
};

Problem make_problem(const RationalField& f, std::size_t n,
                     std::uint64_t seed) {
  kp::util::Prng prng(seed);
  Problem p{Matrix<RationalField>(n, n, f.zero()), {}, {}};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t num =
          static_cast<std::int64_t>(prng.below(19)) - 9;
      const std::int64_t den = 1 + static_cast<std::int64_t>(prng.below(4));
      p.a.at(i, j) = Rational(num, den);
    }
    // Dominant diagonal keeps the matrix nonsingular without a rank check.
    p.a.at(i, i) = Rational(static_cast<std::int64_t>(10 * n), 1);
    p.x_true.push_back(
        Rational(static_cast<std::int64_t>(prng.below(19)) - 9, 1));
  }
  p.b.assign(n, f.zero());
  for (std::size_t i = 0; i < n; ++i) {
    Rational acc = f.zero();
    for (std::size_t j = 0; j < n; ++j) {
      acc = f.add(acc, f.mul(p.a.at(i, j), p.x_true[j]));
    }
    p.b[i] = acc;
  }
  return p;
}

template <class Fn>
double time_once_ms(Fn&& fn) {
  kp::util::WallTimer t;
  fn();
  return t.elapsed_ms();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<std::size_t> size_override;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--sizes=", 8) == 0) {
      size_override.clear();
      for (const char* s = argv[i] + 8; *s;) {
        size_override.push_back(std::strtoul(s, const_cast<char**>(&s), 10));
        if (*s == ',') ++s;
      }
    }
  }
  const std::vector<std::size_t> sizes =
      !size_override.empty() ? size_override
      : quick               ? std::vector<std::size_t>{16, 32, 48}
                            : std::vector<std::size_t>{64, 96, 128, 192,
                                                       256, 512};
  // Generic rational elimination is super-quartic in n (entry bit-lengths
  // grow with elimination depth, and BigInt products are quadratic in
  // bits).  Past kGenericMeasureMax its single measurement runs for hours,
  // so the full run measures generic up to that size and reports a
  // power-law fit of the measured points beyond it, with the rows tagged
  // generic_measured=false.  The fitted exponent UNDERSTATES the true
  // growth (the exponent itself rises with n), so extrapolated speedups
  // are conservative lower bounds.  The no-early-termination ablation runs
  // the full Hadamard prime budget, so it is likewise capped.
  const std::size_t kGenericMeasureMax = quick ? 48 : 192;
  const std::size_t kFullShardMax = quick ? 48 : 128;
  RationalField f;
  kp::util::BenchReport report("crt");
  kp::util::Table table({"series", "n", "shards", "cap", "batches", "et",
                         "crt ms", "generic ms", "meas", "speedup", "match"});

  // (log n, log ms) points of the measured generic runs, for the power-law
  // fit used past kGenericMeasureMax.
  std::vector<std::pair<double, double>> fit_pts;
  auto fitted_generic_ms = [&](std::size_t n) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (const auto& [lx, ly] : fit_pts) {
      sx += lx;
      sy += ly;
      sxx += lx * lx;
      sxy += lx * ly;
    }
    const double m = fit_pts.size();
    const double slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
    const double inter = (sy - slope * sx) / m;
    return std::exp(inter + slope * std::log(static_cast<double>(n)));
  };

  for (const std::size_t n : sizes) {
    const Problem prob = make_problem(f, n, 0xC57 + n);

    kp::core::CrtOptions opt;
    kp::core::CrtSolveResult et_res, full_res;
    const double et_ms = time_once_ms([&] {
      kp::util::Prng prng(7);
      et_res = kp::core::crt_solve(f, prob.a, prob.b, prng, opt);
    });
    check(et_res.ok && !et_res.used_generic, "crt (et) solve succeeded");
    check(et_res.x == prob.x_true, "crt (et) answer exact");

    const bool run_full = n <= kFullShardMax;
    double full_ms = 0;
    if (run_full) {
      kp::core::CrtOptions full_opt = opt;
      full_opt.early_termination = false;
      full_ms = time_once_ms([&] {
        kp::util::Prng prng(7);
        full_res = kp::core::crt_solve(f, prob.a, prob.b, prng, full_opt);
      });
      check(full_res.ok && !full_res.used_generic,
            "crt (full) solve succeeded");
      check(full_res.x == prob.x_true, "crt (full) answer exact");
    }

    const bool generic_measured = n <= kGenericMeasureMax;
    double generic_ms = 0;
    if (generic_measured) {
      std::vector<Rational> gx;
      generic_ms = time_once_ms([&] {
        auto r = kp::matrix::solve_gauss(f, prob.a, prob.b);
        check(r.has_value(), "generic gauss solve succeeded");
        if (r) gx = std::move(*r);
      });
      check(gx == prob.x_true, "generic answer exact");
      check(gx == et_res.x, "crt matches generic entry-by-entry");
      fit_pts.emplace_back(std::log(static_cast<double>(n)),
                           std::log(generic_ms));
    } else {
      generic_ms = fit_pts.size() >= 2 ? fitted_generic_ms(n) : 0;
    }

    auto add_row = [&](const char* series, const kp::core::CrtSolveResult& r,
                       double crt_ms, bool et) {
      const double speedup =
          crt_ms > 0 && generic_ms > 0 ? generic_ms / crt_ms : 0;
      const bool match = r.ok && r.x == prob.x_true;
      table.add_row({series, std::to_string(n),
                     std::to_string(r.shards_used),
                     std::to_string(r.hadamard_cap),
                     std::to_string(r.batches), et ? "yes" : "no",
                     kp::util::Table::num(crt_ms, 2),
                     kp::util::Table::num(generic_ms, 2),
                     generic_measured ? "yes" : "fit",
                     kp::util::Table::num(speedup, 2), match ? "yes" : "NO"});
      report.begin_row(series);
      report.put("n", n);
      report.put("shards_used", r.shards_used);
      report.put("hadamard_cap", r.hadamard_cap);
      report.put("batches", r.batches);
      report.put("early_termination", et);
      report.put("early_terminated", r.early_terminated);
      report.put("crt_ms", crt_ms);
      report.put("generic_ms", generic_ms);
      report.put("generic_measured", generic_measured);
      report.put("speedup", speedup);
      report.put("match", match);
    };
    add_row("crt_et", et_res, et_ms, true);
    if (run_full) add_row("crt_full", full_res, full_ms, false);

    std::printf("n=%zu: et %.2f ms (%zu shards); full %s (%zu shards); "
                "generic %.2f ms (%s)\n",
                n, et_ms, et_res.shards_used,
                run_full ? kp::util::Table::num(full_ms, 2).c_str() : "-",
                run_full ? full_res.shards_used : 0, generic_ms,
                generic_measured ? "measured" : "power-law fit");
    std::fflush(stdout);
  }

  table.print();
  report.write();
  if (failures) {
    std::printf("\n%d mismatch(es)\n", failures);
    return 1;
  }
  std::printf("\nall CRT answers exact and equal to the generic route\n");
  return 0;
}

// Experiment E5 (Theorem 3): characteristic polynomial of an n x n Toeplitz
// matrix in O(n^2 polylog n) work and polylog depth.
//
// Reported series:
//   1. field-operation counts of the Newton-on-Toeplitz route vs n, with the
//      fitted growth exponent (paper: ~2 + polylog, vs 4 for the
//      division-free baselines);
//   2. the same for Berkowitz (O(n^4)) and Faddeev-LeVerrier (O(n^4)) on the
//      dense copy, including the work crossover;
//   3. size and depth of the recorded Theorem-3 circuit vs n (depth must
//      grow polylogarithmically).
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "core/baselines.h"
#include "field/zp.h"
#include "matrix/matpoly.h"
#include "poly/ntt.h"
#include "pram/parallel_for.h"
#include "seq/newton_toeplitz.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"


namespace {
/// Last points of a series: the asymptotic regime (the NTT bivariate kernel
/// engages from n = 8, so small-n points measure a different kernel).
std::vector<double> tail(const std::vector<double>& v) {
  const std::size_t keep = v.size() > 3 ? 3 : v.size();
  return {v.end() - static_cast<std::ptrdiff_t>(keep), v.end()};
}
}  // namespace

using F = kp::field::GFp;  // NTT-friendly prime: fast bivariate mult

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(42);
  kp::util::BenchReport report("toeplitz_charpoly");

  std::printf("E5 (Theorem 3): Toeplitz characteristic polynomial work counts\n\n");
  kp::util::Table t({"n", "newton-toeplitz ops", "berkowitz ops", "faddeev ops",
                     "newton/n^2", "berkowitz/n^4"});
  std::vector<double> ns, newton_ops, berk_ops;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    kp::util::WallTimer wt;
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    kp::matrix::Toeplitz<F> tp(n, diag);

    kp::util::OpScope s1;
    auto p1 = kp::seq::toeplitz_charpoly(f, tp);
    const auto ops_newton = s1.counts().total();

    std::uint64_t ops_berk = 0, ops_fadd = 0;
    if (n <= 64) {
      auto dense = tp.to_dense(f);
      kp::util::OpScope s2;
      auto p2 = kp::core::charpoly_berkowitz(f, dense);
      ops_berk = s2.counts().total();
      kp::util::OpScope s3;
      auto p3 = kp::core::faddeev_leverrier(f, dense).charpoly;
      ops_fadd = s3.counts().total();
      if (p1 != p2 || p1 != p3) {
        std::printf("MISMATCH at n=%zu!\n", n);
        return 1;
      }
    }
    ns.push_back(static_cast<double>(n));
    newton_ops.push_back(static_cast<double>(ops_newton));
    report.begin_row("E5_work");
    report.put("n", n);
    report.put("ops_newton_toeplitz", ops_newton);
    report.put("ops_berkowitz", ops_berk);
    report.put("ops_faddeev", ops_fadd);
    report.put("wall_ms", wt.elapsed_ms());
    if (ops_berk) berk_ops.push_back(static_cast<double>(ops_berk));

    const double n2 = static_cast<double>(n) * static_cast<double>(n);
    const double n4 = n2 * n2;
    t.add_row({std::to_string(n), kp::util::Table::num(ops_newton),
               ops_berk ? kp::util::Table::num(ops_berk) : "-",
               ops_fadd ? kp::util::Table::num(ops_fadd) : "-",
               kp::util::Table::num(static_cast<double>(ops_newton) / n2, 3),
               ops_berk ? kp::util::Table::num(static_cast<double>(ops_berk) / n4, 3)
                        : "-"});
  }
  t.print();
  std::printf("\nfitted work exponent (newton-toeplitz): %.2f   (paper: 2 + polylog)\n",
              kp::util::fit_exponent(ns, newton_ops));
  std::vector<double> bns(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(berk_ops.size()));
  std::printf("fitted work exponent (berkowitz):       %.2f   (theory: 4)\n\n",
              kp::util::fit_exponent(bns, berk_ops));

  std::printf("Theorem-3 circuit size and depth (recorded program):\n\n");
  kp::util::Table tc({"n", "size", "depth", "size/n^2", "depth/log2(n)^2"});
  std::vector<double> cns, sizes, depths;
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    auto c = kp::circuit::build_toeplitz_charpoly_circuit(n, kp::field::kNttPrime);
    report.begin_row("E5_circuit");
    report.put("n", n);
    report.put("size", std::uint64_t{c.size()});
    report.put("depth", static_cast<std::uint64_t>(c.depth()));
    cns.push_back(static_cast<double>(n));
    sizes.push_back(static_cast<double>(c.size()));
    depths.push_back(static_cast<double>(c.depth()));
    const double lg = std::log2(static_cast<double>(n));
    tc.add_row({std::to_string(n), kp::util::Table::num(std::uint64_t{c.size()}),
                std::to_string(c.depth()),
                kp::util::Table::num(static_cast<double>(c.size()) /
                                         (static_cast<double>(n) * static_cast<double>(n)),
                                     3),
                kp::util::Table::num(static_cast<double>(c.depth()) /
                                         (lg * lg > 0 ? lg * lg : 1),
                                     3)});
  }
  tc.print();
  std::printf("\nfitted size exponent:  %.2f  (paper: ~2 up to log factors)\n",
              kp::util::fit_exponent(tail(cns), tail(sizes)));
  std::printf("fitted depth exponent: %.2f  (polylog: exponent must be ~0)\n",
              kp::util::fit_exponent(tail(cns), tail(depths)));

  // Transform layer (batched ntt_many + TransformedPoly caching): wall-clock
  // across worker counts, and forward transforms avoided by operand caching.
  // Values and logical op counts are identical in every configuration; only
  // the wall clock and the diagnostic transform counters move.
  std::printf("\nTransform layer: worker sweep and operand-cache ablation\n\n");
  auto& ctx = kp::pram::ExecutionContext::global();
  const unsigned hw = kp::pram::worker_count();
  kp::util::Table ts({"n", "workers", "cache", "wall ms", "fwd ntt",
                      "fwd avoided", "ops"});
  for (std::size_t n : {256u, 512u, 1024u}) {
    for (const bool cache_on : {true, false}) {
      for (const unsigned workers : {1u, 2u, hw}) {
        if (!cache_on && workers != hw) continue;  // ablation at hw only
        kp::poly::transform_cache_enabled().store(cache_on);
        ctx.set_worker_limit(workers);
        kp::util::Prng p2(1000 + n);
        std::vector<F::Element> diag(2 * n - 1);
        for (auto& v : diag) v = f.random(p2);
        kp::matrix::Toeplitz<F> tp(n, diag);
        kp::poly::reset_transform_stats();
        kp::util::WallTimer wt;
        kp::util::OpScope ops;
        auto cp = kp::seq::toeplitz_charpoly(f, tp);
        const double ms = wt.elapsed_ms();
        const auto total = ops.counts().total();
        const auto stats = kp::poly::transform_stats();
        ctx.set_worker_limit(0);
        if (cp.size() != n + 1) {
          std::printf("BAD CHARPOLY at n=%zu\n", n);
          return 1;
        }
        report.begin_row("E5_transform_sweep");
        report.put("n", n);
        report.put("workers", std::uint64_t{workers});
        report.put("cache", cache_on);
        report.put("wall_ms", ms);
        report.put("forward_ntt", stats.forward);
        report.put("inverse_ntt", stats.inverse);
        report.put("transforms_avoided", stats.forward_avoided);
        report.put("ops", total);
        ts.add_row({std::to_string(n), std::to_string(workers),
                    cache_on ? "on" : "off", kp::util::Table::num(ms, 2),
                    kp::util::Table::num(stats.forward),
                    kp::util::Table::num(stats.forward_avoided),
                    kp::util::Table::num(total)});
      }
    }
  }
  kp::poly::transform_cache_enabled().store(true);
  ts.print();
  std::printf("\n'fwd avoided' counts forward NTTs served from operand caches;\n"
              "logical op counts are charged as if recomputed (constant per row).\n");

  // Hot-path kernels at large n: (a) repeated Toeplitz products against a
  // fixed matrix, cold (cache off, both forward transforms per product) vs
  // cached+batched (one varying-side transform per product); (b) the
  // transform-domain matrix-of-polynomials product vs entrywise mat_mul.
  std::printf("\nHot-path kernels at n >= 2048 (single fixed operand reuse)\n\n");
  kp::util::Table tk({"kernel", "n", "cold ms", "cached ms", "speedup"});
  for (std::size_t n : {2048u, 4096u}) {
    kp::util::Prng p3(300 + n);
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(p3);
    const std::size_t kRhs = 8, kRounds = 12;
    std::vector<std::vector<F::Element>> xs(kRhs);
    std::vector<const std::vector<F::Element>*> xp(kRhs);
    for (std::size_t k = 0; k < kRhs; ++k) {
      xs[k].resize(n);
      for (auto& e : xs[k]) e = f.random(p3);
      xp[k] = &xs[k];
    }
    kp::poly::PolyRing<F> ring(f);

    kp::poly::transform_cache_enabled().store(false);
    kp::matrix::Toeplitz<F> t_cold(n, diag);
    std::vector<F::Element> sink_cold;
    kp::util::WallTimer wc;
    for (std::size_t round = 0; round < kRounds; ++round) {
      for (std::size_t k = 0; k < kRhs; ++k) {
        sink_cold = t_cold.apply(ring, xs[k]);
      }
    }
    const double ms_cold = wc.elapsed_ms();

    kp::poly::transform_cache_enabled().store(true);
    kp::matrix::Toeplitz<F> t_warm(n, diag);
    kp::util::WallTimer ww;
    std::vector<std::vector<F::Element>> warm_out;
    for (std::size_t round = 0; round < kRounds; ++round) {
      warm_out = t_warm.apply_many(ring, xp);
    }
    const double ms_warm = ww.elapsed_ms();
    if (warm_out.back() != sink_cold) {
      std::printf("TOEPLITZ APPLY MISMATCH at n=%zu\n", n);
      return 1;
    }
    tk.add_row({"toeplitz-apply", std::to_string(n),
                kp::util::Table::num(ms_cold, 2),
                kp::util::Table::num(ms_warm, 2),
                kp::util::Table::num(ms_cold / ms_warm, 2)});
    report.begin_row("E5_hotpath_kernel");
    report.put("kernel", "toeplitz_apply");
    report.put("n", n);
    report.put("rhs", std::uint64_t{kRhs});
    report.put("rounds", std::uint64_t{kRounds});
    report.put("wall_ms_cold", ms_cold);
    report.put("wall_ms_cached", ms_warm);
    report.put("speedup", ms_cold / ms_warm);

    // Matrix-of-polynomials product: one batched transform per entry.
    const std::size_t m = 4;
    kp::matrix::Matrix<kp::poly::PolyRing<F>> ma(m, m, ring.zero()),
        mb(m, m, ring.zero());
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        std::vector<F::Element> pa(n), pb(n);
        for (auto& e : pa) e = f.random(p3);
        for (auto& e : pb) e = f.random(p3);
        ma.at(i, j) = std::move(pa);
        mb.at(i, j) = std::move(pb);
      }
    }
    kp::util::WallTimer wm1;
    const auto ref = kp::matrix::mat_mul(ring, ma, mb);
    const double ms_matmul = wm1.elapsed_ms();
    kp::util::WallTimer wm2;
    const auto fast = kp::matrix::matpoly_mul(ring, ma, mb);
    const double ms_matpoly = wm2.elapsed_ms();
    if (fast.data() != ref.data()) {
      std::printf("MATPOLY MISMATCH at n=%zu\n", n);
      return 1;
    }
    tk.add_row({"matpoly-mul", std::to_string(n),
                kp::util::Table::num(ms_matmul, 2),
                kp::util::Table::num(ms_matpoly, 2),
                kp::util::Table::num(ms_matmul / ms_matpoly, 2)});
    report.begin_row("E5_hotpath_kernel");
    report.put("kernel", "matpoly_mul");
    report.put("n", n);
    report.put("dim", std::uint64_t{m});
    report.put("wall_ms_cold", ms_matmul);
    report.put("wall_ms_cached", ms_matpoly);
    report.put("speedup", ms_matmul / ms_matpoly);
  }
  tk.print();
  std::printf("\n'cold' recomputes every operand transform; 'cached' reuses the\n"
              "fixed side's spectrum (toeplitz-apply) or batches all entry\n"
              "transforms (matpoly-mul).  Same values in both columns.\n");
  return 0;
}

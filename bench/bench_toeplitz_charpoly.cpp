// Experiment E5 (Theorem 3): characteristic polynomial of an n x n Toeplitz
// matrix in O(n^2 polylog n) work and polylog depth.
//
// Reported series:
//   1. field-operation counts of the Newton-on-Toeplitz route vs n, with the
//      fitted growth exponent (paper: ~2 + polylog, vs 4 for the
//      division-free baselines);
//   2. the same for Berkowitz (O(n^4)) and Faddeev-LeVerrier (O(n^4)) on the
//      dense copy, including the work crossover;
//   3. size and depth of the recorded Theorem-3 circuit vs n (depth must
//      grow polylogarithmically).
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "core/baselines.h"
#include "field/zp.h"
#include "seq/newton_toeplitz.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"


namespace {
/// Last points of a series: the asymptotic regime (the NTT bivariate kernel
/// engages from n = 8, so small-n points measure a different kernel).
std::vector<double> tail(const std::vector<double>& v) {
  const std::size_t keep = v.size() > 3 ? 3 : v.size();
  return {v.end() - static_cast<std::ptrdiff_t>(keep), v.end()};
}
}  // namespace

using F = kp::field::GFp;  // NTT-friendly prime: fast bivariate mult

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(42);
  kp::util::BenchReport report("toeplitz_charpoly");

  std::printf("E5 (Theorem 3): Toeplitz characteristic polynomial work counts\n\n");
  kp::util::Table t({"n", "newton-toeplitz ops", "berkowitz ops", "faddeev ops",
                     "newton/n^2", "berkowitz/n^4"});
  std::vector<double> ns, newton_ops, berk_ops;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    kp::util::WallTimer wt;
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    kp::matrix::Toeplitz<F> tp(n, diag);

    kp::util::OpScope s1;
    auto p1 = kp::seq::toeplitz_charpoly(f, tp);
    const auto ops_newton = s1.counts().total();

    std::uint64_t ops_berk = 0, ops_fadd = 0;
    if (n <= 64) {
      auto dense = tp.to_dense(f);
      kp::util::OpScope s2;
      auto p2 = kp::core::charpoly_berkowitz(f, dense);
      ops_berk = s2.counts().total();
      kp::util::OpScope s3;
      auto p3 = kp::core::faddeev_leverrier(f, dense).charpoly;
      ops_fadd = s3.counts().total();
      if (p1 != p2 || p1 != p3) {
        std::printf("MISMATCH at n=%zu!\n", n);
        return 1;
      }
    }
    ns.push_back(static_cast<double>(n));
    newton_ops.push_back(static_cast<double>(ops_newton));
    report.begin_row("E5_work");
    report.put("n", n);
    report.put("ops_newton_toeplitz", ops_newton);
    report.put("ops_berkowitz", ops_berk);
    report.put("ops_faddeev", ops_fadd);
    report.put("wall_ms", wt.elapsed_ms());
    if (ops_berk) berk_ops.push_back(static_cast<double>(ops_berk));

    const double n2 = static_cast<double>(n) * static_cast<double>(n);
    const double n4 = n2 * n2;
    t.add_row({std::to_string(n), kp::util::Table::num(ops_newton),
               ops_berk ? kp::util::Table::num(ops_berk) : "-",
               ops_fadd ? kp::util::Table::num(ops_fadd) : "-",
               kp::util::Table::num(static_cast<double>(ops_newton) / n2, 3),
               ops_berk ? kp::util::Table::num(static_cast<double>(ops_berk) / n4, 3)
                        : "-"});
  }
  t.print();
  std::printf("\nfitted work exponent (newton-toeplitz): %.2f   (paper: 2 + polylog)\n",
              kp::util::fit_exponent(ns, newton_ops));
  std::vector<double> bns(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(berk_ops.size()));
  std::printf("fitted work exponent (berkowitz):       %.2f   (theory: 4)\n\n",
              kp::util::fit_exponent(bns, berk_ops));

  std::printf("Theorem-3 circuit size and depth (recorded program):\n\n");
  kp::util::Table tc({"n", "size", "depth", "size/n^2", "depth/log2(n)^2"});
  std::vector<double> cns, sizes, depths;
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    auto c = kp::circuit::build_toeplitz_charpoly_circuit(n, kp::field::kNttPrime);
    report.begin_row("E5_circuit");
    report.put("n", n);
    report.put("size", std::uint64_t{c.size()});
    report.put("depth", static_cast<std::uint64_t>(c.depth()));
    cns.push_back(static_cast<double>(n));
    sizes.push_back(static_cast<double>(c.size()));
    depths.push_back(static_cast<double>(c.depth()));
    const double lg = std::log2(static_cast<double>(n));
    tc.add_row({std::to_string(n), kp::util::Table::num(std::uint64_t{c.size()}),
                std::to_string(c.depth()),
                kp::util::Table::num(static_cast<double>(c.size()) /
                                         (static_cast<double>(n) * static_cast<double>(n)),
                                     3),
                kp::util::Table::num(static_cast<double>(c.depth()) /
                                         (lg * lg > 0 ? lg * lg : 1),
                                     3)});
  }
  tc.print();
  std::printf("\nfitted size exponent:  %.2f  (paper: ~2 up to log factors)\n",
              kp::util::fit_exponent(tail(cns), tail(sizes)));
  std::printf("fitted depth exponent: %.2f  (polylog: exponent must be ~0)\n",
              kp::util::fit_exponent(tail(cns), tail(depths)));
  return 0;
}

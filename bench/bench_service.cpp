// Service-layer benchmark: what the hardened SolverService delivers under
// friendly load, overload, and injected faults.
//
//   S1  Unloaded latency: bursts of max_batch requests against one
//       prepared session; per-request p50 (queue wait + execution).
//   S2  Session reuse: solves/sec streaming RHS through one pinned session
//       (the transcript, preconditioner, and spectra stay warm) vs paying
//       register_operator + prepare for every request.  The pinned route
//       must win by >= 5x.
//   S3  Overload: 2x queue-capacity offered load.  The bounded queue must
//       shed the excess with kQueueOverflow, every admitted request must
//       return the exact known solution, and the admitted p50 must stay
//       within 2x of the unloaded p50 (backpressure keeps latency flat
//       instead of letting the queue grow).
//   S4  Fault legs (KP_FAULT_INJECTION builds): persistent kServiceBatch
//       faults must degrade every request to the single-RHS route,
//       persistent kServiceExecute faults to the dense baseline -- both
//       still returning the exact solution -- and kServiceAdmission faults
//       must shed at the door.
//   S5  Aggregate solves/sec vs concurrent sessions (reported, not gated).
//
// Exits non-zero on any wrong answer, missed shed, or broken degradation
// level, so CI runs it as a correctness gate (--quick).  Latency ratios are
// gated only in the full run; timing is always reported.  Emits
// BENCH_service.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/service.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/sparse.h"
#include "util/bench_json.h"
#include "util/fault.h"
#include "util/prng.h"
#include "util/status.h"
#include "util/tables.h"

namespace {

using F = kp::field::Zp<kp::field::kNttPrime>;
using kp::core::DegradationLevel;
using kp::core::ServiceConfig;
using kp::core::SolverService;
using kp::util::Stage;

F f;
int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("MISMATCH: %s\n", what);
    ++failures;
  }
}

/// A workload: one sparse operator plus `count` (b, x_true) pairs with
/// b = A x_true, so every service answer can be checked exactly.
struct Workload {
  kp::matrix::Sparse<F> a;
  std::vector<std::vector<F::Element>> b;
  std::vector<std::vector<F::Element>> x;

  Workload(std::size_t n, std::size_t count, std::uint64_t seed)
      : a(make_operator(n, seed)) {
    kp::matrix::SparseBox<F> box(f, a);
    kp::util::Prng prng(seed ^ 0x5248532d67656eULL);
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<F::Element> xi(n);
      for (auto& e : xi) e = f.random(prng);
      b.push_back(box.apply(xi));
      x.push_back(std::move(xi));
    }
  }

  static kp::matrix::Sparse<F> make_operator(std::size_t n,
                                             std::uint64_t seed) {
    // Upper triangular with a non-zero diagonal: non-singular by
    // construction, so no leg ever spins on unlucky operators.
    kp::util::Prng prng(seed);
    std::vector<kp::matrix::Sparse<F>::Entry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      auto d = f.random(prng);
      while (f.is_zero(d)) d = f.random(prng);
      entries.push_back({i, i, d});
      if (i + 1 < n) entries.push_back({i, i + 1, f.random(prng)});
      if (i + 5 < n) entries.push_back({i, i + 5, f.random(prng)});
    }
    return kp::matrix::Sparse<F>(f, n, n, std::move(entries));
  }

  kp::matrix::AnyBox<F> box() const {
    return kp::matrix::AnyBox<F>(kp::matrix::SparseBox<F>(f, a));
  }
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

double latency_ms(const kp::core::RequestTelemetry& t) {
  return (t.queue_wait_ns + t.exec_ns) * 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t n = quick ? 48 : 96;
  const int rounds = quick ? 6 : 24;
  const int reuse_iters = quick ? 8 : 32;

  kp::util::BenchReport report("service");
  std::printf("bench_service: n=%zu %s\n", n, quick ? "(quick)" : "");

  ServiceConfig cfg;
  cfg.queue_capacity = 8;
  cfg.max_batch = 8;
  cfg.dispatchers = 2;

  Workload wl(n, cfg.queue_capacity * 2, 42);

  // ---------------------------------------------------------- S1 + S3 ----
  // Same service instance for the unloaded and overloaded sweeps so the
  // comparison isolates offered load.
  double p50_unloaded = 0.0;
  double p50_overload = 0.0;
  {
    SolverService<F> svc(f, cfg);
    auto sid = svc.register_operator(wl.box(), 7);
    check(sid.ok(), "register_operator failed");
    if (!sid.ok()) return 1;

    const auto run_round =
        [&](std::size_t burst, std::vector<double>& lat, std::uint64_t& shed,
            std::uint64_t& wrong) {
          std::vector<std::future<SolverService<F>::Result>> futs;
          futs.reserve(burst);
          for (std::size_t i = 0; i < burst; ++i) {
            futs.push_back(svc.submit(sid.value(), wl.b[i % wl.b.size()]));
          }
          for (std::size_t i = 0; i < burst; ++i) {
            auto r = futs[i].get();
            if (r.status.kind() == kp::util::FailureKind::kQueueOverflow) {
              ++shed;
              continue;
            }
            if (!r.status.ok() || r.x != wl.x[i % wl.x.size()]) {
              ++wrong;
              continue;
            }
            lat.push_back(latency_ms(r.telemetry));
          }
        };

    // Unloaded: bursts that fit the queue exactly, quiescing in between.
    std::vector<double> lat;
    std::uint64_t shed = 0, wrong = 0;
    for (int r = 0; r < rounds; ++r) {
      run_round(cfg.queue_capacity, lat, shed, wrong);
    }
    check(wrong == 0, "unloaded leg returned a wrong/failed answer");
    check(shed == 0, "unloaded leg shed requests");
    p50_unloaded = percentile(lat, 0.5);
    report.begin_row("S1_unloaded");
    report.put("n", static_cast<std::uint64_t>(n));
    report.put("requests", static_cast<std::uint64_t>(lat.size()));
    report.put("p50_ms", p50_unloaded);
    report.put("p90_ms", percentile(lat, 0.9));

    // Overload: 2x queue capacity offered per burst.  The excess must be
    // shed at admission; the admitted must stay exact and fast.
    std::vector<double> olat;
    std::uint64_t oshed = 0, owrong = 0;
    for (int r = 0; r < rounds; ++r) {
      run_round(cfg.queue_capacity * 2, olat, oshed, owrong);
    }
    check(owrong == 0, "overload leg returned a wrong/failed answer");
    check(oshed > 0, "overload leg never shed (queue bound not enforced?)");
    p50_overload = percentile(olat, 0.5);
    const double ratio =
        p50_unloaded > 0 ? p50_overload / p50_unloaded : 0.0;
    if (!quick) {
      check(ratio <= 2.0, "overloaded p50 exceeded 2x the unloaded p50");
    }
    const auto s = svc.stats();
    check(s.rejected_overflow == oshed, "overflow counter disagrees");
    report.begin_row("S3_overload");
    report.put("offered_per_round",
               static_cast<std::uint64_t>(cfg.queue_capacity * 2));
    report.put("admitted", static_cast<std::uint64_t>(olat.size()));
    report.put("shed", oshed);
    report.put("p50_ms", p50_overload);
    report.put("p50_vs_unloaded", ratio);
    std::printf(
        "  S1/S3: unloaded p50 %.3f ms; overloaded p50 %.3f ms (%.2fx), "
        "%llu shed\n",
        p50_unloaded, p50_overload, ratio,
        static_cast<unsigned long long>(oshed));
  }

  // ----------------------------------------------------------------- S2 --
  // Session reuse vs re-registering the operator per request.
  {
    double reuse_ms = 0.0;
    {
      SolverService<F> svc(f, cfg);
      auto sid = svc.register_operator(wl.box(), 7);
      check(sid.ok(), "S2 register failed");
      kp::util::WallTimer t;
      for (int i = 0; i < reuse_iters; i += static_cast<int>(cfg.max_batch)) {
        std::vector<std::future<SolverService<F>::Result>> futs;
        for (std::size_t k = 0; k < cfg.max_batch; ++k) {
          futs.push_back(
              svc.submit(sid.value(), wl.b[(i + k) % wl.b.size()]));
        }
        for (std::size_t k = 0; k < futs.size(); ++k) {
          auto r = futs[k].get();
          check(r.status.ok() && r.x == wl.x[(i + k) % wl.x.size()],
                "S2 reuse answer wrong");
        }
      }
      reuse_ms = t.elapsed_ms();
    }
    double fresh_ms = 0.0;
    {
      SolverService<F> svc(f, cfg);
      kp::util::WallTimer t;
      for (int i = 0; i < reuse_iters; ++i) {
        auto sid = svc.register_operator(wl.box(),
                                         7 + static_cast<std::uint64_t>(i));
        check(sid.ok(), "S2 fresh register failed");
        auto r = svc.submit(sid.value(), wl.b[i % wl.b.size()]).get();
        check(r.status.ok() && r.x == wl.x[i % wl.x.size()],
              "S2 fresh answer wrong");
      }
      fresh_ms = t.elapsed_ms();
    }
    const double reuse_sps = reuse_iters / (reuse_ms * 1e-3);
    const double fresh_sps = reuse_iters / (fresh_ms * 1e-3);
    const double speedup = fresh_ms > 0 ? reuse_sps / fresh_sps : 0.0;
    check(speedup >= 5.0, "session reuse under 5x vs re-registering");
    report.begin_row("S2_session_reuse");
    report.put("solves", reuse_iters);
    report.put("reuse_solves_per_sec", reuse_sps);
    report.put("fresh_solves_per_sec", fresh_sps);
    report.put("speedup", speedup);
    std::printf("  S2: reuse %.1f solves/s vs fresh %.1f solves/s (%.1fx)\n",
                reuse_sps, fresh_sps, speedup);
  }

  // ----------------------------------------------------------------- S4 --
#if KP_FAULT_INJECTION_ENABLED
  {
    SolverService<F> svc(f, cfg);
    auto sid = svc.register_operator(wl.box(), 7);
    check(sid.ok(), "S4 register failed");

    // Persistent batch fault: every request must still come back exact,
    // served one level down (single-RHS).
    {
      kp::util::fault::ScopedFault fi(Stage::kServiceBatch, /*attempt=*/-1,
                                      /*site_index=*/-1, /*one_shot=*/false);
      for (std::size_t i = 0; i < 4; ++i) {
        auto r = svc.submit(sid.value(), wl.b[i]).get();
        check(r.status.ok() && r.x == wl.x[i], "S4 batch-fault answer wrong");
        check(r.telemetry.level == DegradationLevel::kSingleRhs,
              "S4 batch fault did not degrade to single-RHS");
      }
      report.begin_row("S4_fault_batch");
      report.put("requests", static_cast<std::uint64_t>(4));
      report.put("level", kp::core::to_string(DegradationLevel::kSingleRhs));
      report.put("fired", static_cast<std::uint64_t>(fi.fired()));
    }
    // Persistent execute fault on top: the solo retry is also denied, so
    // the dense baseline must settle the request -- still exact.
    {
      kp::util::fault::ScopedFault fb(Stage::kServiceBatch, -1, -1, false);
      kp::util::fault::ScopedFault fe(Stage::kServiceExecute, -1, -1, false);
      auto r = svc.submit(sid.value(), wl.b[0]).get();
      check(r.status.ok() && r.x == wl.x[0], "S4 dense-settle answer wrong");
      check(r.telemetry.level == DegradationLevel::kDenseBaseline,
            "S4 execute fault did not settle on the dense baseline");
      report.begin_row("S4_fault_execute");
      report.put("level",
                 kp::core::to_string(DegradationLevel::kDenseBaseline));
    }
    // Admission fault: shed at the door with the injected flag set.
    {
      kp::util::fault::ScopedFault fa(Stage::kServiceAdmission);
      auto r = svc.submit(sid.value(), wl.b[0]).get();
      check(r.status.kind() == kp::util::FailureKind::kQueueOverflow &&
                r.status.injected(),
            "S4 admission fault did not shed");
      report.begin_row("S4_fault_admission");
      report.put("kind", kp::util::to_string(r.status.kind()));
      report.put_json("diag_sample", r.telemetry.to_json());
    }
    std::printf("  S4: fault legs degraded/shed as designed\n");
  }
#else
  std::printf("  S4: skipped (fault injection compiled out)\n");
#endif

  // ----------------------------------------------------------------- S5 --
  {
    kp::util::Table t({"sessions", "solves", "wall_ms", "solves_per_sec"});
    for (const std::size_t nsess : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
      SolverService<F> svc(f, cfg);
      std::vector<std::uint64_t> sids;
      std::vector<Workload> wls;
      wls.reserve(nsess);
      for (std::size_t s = 0; s < nsess; ++s) {
        wls.emplace_back(n, cfg.max_batch, 100 + s);
        auto sid = svc.register_operator(wls.back().box(), 100 + s);
        check(sid.ok(), "S5 register failed");
        sids.push_back(sid.value());
      }
      const std::size_t per_sess = quick ? 4 : 16;
      std::uint64_t ok_count = 0;
      kp::util::WallTimer timer;
      std::vector<std::future<SolverService<F>::Result>> futs;
      for (std::size_t i = 0; i < per_sess; ++i) {
        for (std::size_t s = 0; s < nsess; ++s) {
          futs.push_back(
              svc.submit(sids[s], wls[s].b[i % wls[s].b.size()]));
        }
        if (futs.size() >= cfg.queue_capacity || i + 1 == per_sess) {
          for (auto& fu : futs) {
            auto r = fu.get();
            if (r.status.ok()) ++ok_count;
          }
          futs.clear();
        }
      }
      const double ms = timer.elapsed_ms();
      const double sps = static_cast<double>(ok_count) / (ms * 1e-3);
      t.add_row({std::to_string(nsess), std::to_string(ok_count),
                 kp::util::Table::num(ms, 2), kp::util::Table::num(sps, 1)});
      report.begin_row("S5_concurrent_sessions");
      report.put("sessions", static_cast<std::uint64_t>(nsess));
      report.put("solves", ok_count);
      report.put("wall_ms", ms);
      report.put("solves_per_sec", sps);
    }
    std::printf("  S5: aggregate throughput vs concurrent sessions\n");
    t.print();
  }

  report.write();
  if (failures) {
    std::printf("bench_service: %d FAILURE(S)\n", failures);
    return 1;
  }
  std::printf("bench_service: all checks passed\n");
  return 0;
}

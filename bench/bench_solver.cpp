// Experiment E6 (Theorem 4): the randomized solver circuit has size
// O(n^omega log n), depth O(log^2 n), and O(n) random nodes.
//
// Reported series:
//   1. recorded circuit size / depth / #randoms vs n, with fitted exponents
//      (classical matmul black box => size exponent ~3);
//   2. direct-implementation work counts of kp_solve vs Gaussian
//      elimination, and the work ratio (the "processor efficiency" claim:
//      within a polylog factor of matrix multiplication).
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuit/builders.h"
#include "core/solver.h"
#include "field/zp.h"
#include "matrix/blackbox.h"
#include "matrix/gauss.h"
#include "matrix/structured.h"
#include "poly/ntt.h"
#include "pram/parallel_for.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"


namespace {
/// Last points of a series: the asymptotic regime (the NTT bivariate kernel
/// engages from n = 8, so small-n points measure a different kernel).
std::vector<double> tail(const std::vector<double>& v) {
  const std::size_t keep = v.size() > 3 ? 3 : v.size();
  return {v.end() - static_cast<std::ptrdiff_t>(keep), v.end()};
}
}  // namespace

using F = kp::field::GFp;  // NTT-friendly prime: fast bivariate mult

int main() {
  F f(kp::field::kNttPrime);
  kp::util::Prng prng(7);
  kp::util::BenchReport report("solver");

  std::printf("E6 (Theorem 4): solver circuit measures\n\n");
  kp::util::Table tc({"n", "size", "depth", "randoms", "size/(n^3 log n)",
                      "depth/log2(n)^2"});
  std::vector<double> ns, sizes, depths;
  for (std::size_t n : {2u, 4u, 8u, 16u, 24u, 32u}) {
    kp::util::WallTimer wt;
    auto c = kp::circuit::build_solver_circuit(n, kp::field::kNttPrime);
    report.begin_row("E6_circuit");
    report.put("n", n);
    report.put("size", std::uint64_t{c.size()});
    report.put("depth", static_cast<std::uint64_t>(c.depth()));
    report.put("randoms", static_cast<std::uint64_t>(c.num_randoms()));
    report.put("wall_ms", wt.elapsed_ms());
    ns.push_back(static_cast<double>(n));
    sizes.push_back(static_cast<double>(c.size()));
    depths.push_back(static_cast<double>(c.depth()));
    const double nn = static_cast<double>(n);
    const double lg = std::log2(nn);
    tc.add_row(
        {std::to_string(n), kp::util::Table::num(std::uint64_t{c.size()}),
         std::to_string(c.depth()), std::to_string(c.num_randoms()),
         kp::util::Table::num(sizes.back() / (nn * nn * nn * (lg > 0 ? lg : 1)), 3),
         kp::util::Table::num(depths.back() / (lg * lg > 0 ? lg * lg : 1), 3)});
  }
  tc.print();
  std::printf("\nfitted size exponent:  %.2f  (paper: omega + o(1); classical => ~3)\n",
              kp::util::fit_exponent(tail(ns), tail(sizes)));
  std::printf("fitted depth exponent: %.2f  (polylog: must be ~0)\n",
              kp::util::fit_exponent(tail(ns), tail(depths)));
  std::printf("random nodes are exactly 5n-1 = (2n-1) Hankel + n diagonal + 2n projections\n\n");

  std::printf("Direct implementation: work vs Gaussian elimination\n\n");
  kp::util::Table tw({"n", "kp_solve ops", "gauss ops", "ratio", "ratio/log2(n)^2"});
  for (std::size_t n : {8u, 16u, 32u, 64u, 96u}) {
    kp::util::WallTimer wt;
    auto a = kp::matrix::random_matrix(f, n, n, prng);
    std::vector<F::Element> b(n);
    for (auto& e : b) e = f.random(prng);

    kp::util::OpScope s1;
    auto res = kp::core::kp_solve(f, a, b, prng);
    const auto kp_ops = s1.counts().total();
    if (!res.ok) continue;

    kp::util::OpScope s2;
    auto ref = kp::matrix::solve_gauss(f, a, b);
    const auto gauss_ops = s2.counts().total();
    if (!ref || *ref != res.x) {
      std::printf("MISMATCH at n=%zu\n", n);
      return 1;
    }
    report.begin_row("E6_work");
    report.put("n", n);
    report.put("ops_kp_solve", kp_ops);
    report.put("ops_gauss", gauss_ops);
    report.put("wall_ms", wt.elapsed_ms());
    const double ratio = static_cast<double>(kp_ops) / static_cast<double>(gauss_ops);
    const double lg = std::log2(static_cast<double>(n));
    tw.add_row({std::to_string(n), kp::util::Table::num(kp_ops),
                kp::util::Table::num(gauss_ops), kp::util::Table::num(ratio, 3),
                kp::util::Table::num(ratio / (lg * lg), 3)});
  }
  tw.print();
  std::printf(
      "\nThe randomized pipeline pays a polylog work factor over elimination\n"
      "(the paper's processor-efficiency claim) but realizes an O(log^2 n)-deep\n"
      "circuit where elimination is inherently sequential (depth ~n).\n");

  // Transform layer on the iterative (black-box) route: a Toeplitz system
  // solved through ToeplitzBox, where the matrix symbol and preconditioner
  // operands are cached across the 2n Krylov products.  Rows sweep the
  // worker count and toggle the operand cache; results are bit-identical in
  // every configuration.
  std::printf("\nIterative route: worker sweep and transform-cache ablation\n\n");
  auto& ctx = kp::pram::ExecutionContext::global();
  const unsigned hw = kp::pram::worker_count();
  kp::util::Table tt({"n", "workers", "cache", "wall ms", "fwd ntt",
                      "fwd avoided", "ops"});
  for (std::size_t n : {128u, 256u}) {
    kp::util::Prng setup(900 + n);
    kp::matrix::Toeplitz<F> tp = [&] {
      for (;;) {
        std::vector<F::Element> diag(2 * n - 1);
        for (auto& v : diag) v = f.random(setup);
        kp::matrix::Toeplitz<F> cand(n, std::move(diag));
        if (!f.is_zero(kp::matrix::det_gauss(f, cand.to_dense(f)))) return cand;
      }
    }();
    std::vector<F::Element> b(n);
    for (auto& e : b) e = f.random(setup);
    kp::poly::PolyRing<F> ring(f);

    std::vector<F::Element> ref_x;
    for (const bool cache_on : {true, false}) {
      for (const unsigned workers : {1u, 2u, hw}) {
        if (!cache_on && workers != hw) continue;  // ablation at hw only
        kp::poly::transform_cache_enabled().store(cache_on);
        ctx.set_worker_limit(workers);
        kp::util::Prng p2(5000 + n);
        kp::matrix::ToeplitzBox<F> box(ring, tp);
        kp::poly::reset_transform_stats();
        kp::util::WallTimer wt;
        kp::util::OpScope ops;
        auto res = kp::core::kp_solve(f, box, b, p2);
        const double ms = wt.elapsed_ms();
        const auto total = ops.counts().total();
        const auto stats = kp::poly::transform_stats();
        ctx.set_worker_limit(0);
        if (!res.ok) {
          std::printf("SOLVE FAILED at n=%zu\n", n);
          return 1;
        }
        if (ref_x.empty()) ref_x = res.x;
        if (res.x != ref_x) {
          std::printf("NON-DETERMINISTIC RESULT at n=%zu\n", n);
          return 1;
        }
        report.begin_row("E6_transform_sweep");
        report.put("n", n);
        report.put("workers", std::uint64_t{workers});
        report.put("cache", cache_on);
        report.put("wall_ms", ms);
        report.put("forward_ntt", stats.forward);
        report.put("inverse_ntt", stats.inverse);
        report.put("transforms_avoided", stats.forward_avoided);
        report.put("ops", total);
        tt.add_row({std::to_string(n), std::to_string(workers),
                    cache_on ? "on" : "off", kp::util::Table::num(ms, 2),
                    kp::util::Table::num(stats.forward),
                    kp::util::Table::num(stats.forward_avoided),
                    kp::util::Table::num(total)});
      }
    }
  }
  kp::poly::transform_cache_enabled().store(true);
  tt.print();
  std::printf("\nCached symbols cut the forward-NTT count on the 2n black-box\n"
              "products; op counts stay constant per row by the recharge contract.\n");
  return 0;
}

// Experiment E10 (section 5, complexity (12)): over fields of small positive
// characteristic the Leverrier step is impossible, and the Chistov-based
// route computes the Toeplitz characteristic polynomial in O(n^3 polylog)
// work -- one factor n more than Theorem 3, as the paper states.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/baselines.h"
#include "core/small_char.h"
#include "field/gfpk.h"
#include "field/zp.h"
#include "matrix/gauss.h"
#include "seq/newton_toeplitz.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

int main() {
  kp::util::Prng prng(5);
  kp::util::BenchReport report("small_char");

  std::printf("E10 (section 5 / (12)): Toeplitz charpoly over GF(2^8), n >> char\n\n");
  kp::field::GFpk gf(2, 8);
  kp::util::Table t({"n", "chistov-toeplitz ops", "berkowitz ops", "det check",
                     "chistov/n^3"});
  std::vector<double> ns, ops_series;
  for (std::size_t n : {4u, 8u, 16u, 32u, 48u}) {
    kp::util::WallTimer wt;
    std::vector<kp::field::GFpk::Element> diag;
    for (std::size_t i = 0; i < 2 * n - 1; ++i) diag.push_back(gf.random(prng));
    kp::matrix::Toeplitz<kp::field::GFpk> tp(n, diag);

    kp::util::OpScope s1;
    auto p1 = kp::core::toeplitz_charpoly_any_char(gf, tp);
    const auto ops1 = s1.counts().total();

    std::uint64_t ops2 = 0;
    std::string check = "-";
    if (n <= 32) {
      auto dense = tp.to_dense(gf);
      kp::util::OpScope s2;
      auto p2 = kp::core::charpoly_berkowitz(gf, dense);
      ops2 = s2.counts().total();
      bool same = p1.size() == p2.size();
      for (std::size_t i = 0; same && i < p1.size(); ++i) same = gf.eq(p1[i], p2[i]);
      check = same ? "ok" : "FAIL";
    }

    ns.push_back(static_cast<double>(n));
    ops_series.push_back(static_cast<double>(ops1));
    report.begin_row("chistov_gf2k");
    report.put("n", n);
    report.put("ops_chistov_toeplitz", ops1);
    report.put("ops_berkowitz", ops2);
    report.put("check", check);
    report.put("wall_ms", wt.elapsed_ms());
    const double n3 = std::pow(static_cast<double>(n), 3);
    t.add_row({std::to_string(n), kp::util::Table::num(ops1),
               ops2 ? kp::util::Table::num(ops2) : "-", check,
               kp::util::Table::num(static_cast<double>(ops1) / n3, 3)});
  }
  t.print();
  std::printf("\nfitted work exponent: %.2f (all n), %.2f (asymptotic tail)\n"
              "(paper (12): ~3 up to log factors; one factor n above the\n"
              "characteristic-0 route of Theorem 3)\n\n",
              kp::util::fit_exponent(ns, ops_series),
              kp::util::fit_exponent(
                  std::vector<double>(ns.end() - 3, ns.end()),
                  std::vector<double>(ops_series.end() - 3, ops_series.end())));

  // The char-0 route on the same sizes (big prime field) for the factor-n
  // comparison the paper describes.
  std::printf("Comparison row: the characteristic-0 route (Theorem 3) at equal n:\n\n");
  kp::field::GFp f(kp::field::kNttPrime);
  kp::util::Table t0({"n", "leverrier-route ops", "chistov-route ops", "factor"});
  for (std::size_t i = 0; i < ns.size(); ++i) {
    const std::size_t n = static_cast<std::size_t>(ns[i]);
    std::vector<std::uint64_t> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    kp::matrix::Toeplitz<kp::field::GFp> tp(n, diag);
    kp::util::OpScope s;
    auto p = kp::seq::toeplitz_charpoly(f, tp);
    const auto ops0 = s.counts().total();
    report.begin_row("char0_route");
    report.put("n", n);
    report.put("ops_leverrier_route", ops0);
    t0.add_row({std::to_string(n), kp::util::Table::num(ops0),
                kp::util::Table::num(static_cast<std::uint64_t>(ops_series[i])),
                kp::util::Table::num(ops_series[i] / static_cast<double>(ops0), 3)});
  }
  t0.print();
  std::printf("\nThe factor column should grow roughly linearly in n.\n");
  return 0;
}

// Experiment E1 (Lemma 1): for a linearly generated sequence with minimum
// polynomial of degree m, the Toeplitz matrices T_mu of the sequence satisfy
// det(T_m) != 0 and det(T_M) = 0 for every M > m.
//
// We sweep m, draw random sequences with a planted minimum polynomial of
// degree exactly m, and report the observed determinant pattern across mu.
#include <cstdio>
#include <string>
#include <vector>

#include "field/zp.h"
#include "matrix/gauss.h"
#include "seq/berlekamp_massey.h"
#include "seq/linear_gen.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::Zp<1000003>;

int main() {
  F f;
  kp::util::Prng prng(20260704);
  kp::util::BenchReport report("lemma1");
  const int kTrials = 50;

  std::printf("E1 (Lemma 1): det(T_mu) != 0 iff mu == m, for mu <= m\n");
  std::printf("field Z/1000003, %d random planted sequences per row\n\n", kTrials);

  kp::util::Table table({"m", "mu=m-2", "mu=m-1", "mu=m", "mu=m+1", "mu=m+2",
                         "mu=m+3", "pattern holds"});

  for (std::size_t m : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u}) {
    kp::util::WallTimer wt;
    kp::util::OpScope ops;
    // Count how often det(T_mu) is nonzero at each offset.
    std::vector<int> nonzero(6, 0);
    int trials_done = 0;
    int pattern_holds = 0;
    while (trials_done < kTrials) {
      std::vector<F::Element> mp(m + 1, f.zero());
      for (std::size_t i = 0; i < m; ++i) mp[i] = f.random(prng);
      mp[m] = f.one();
      std::vector<F::Element> seed(m);
      for (auto& v : seed) v = f.random(prng);
      auto seq = kp::seq::sequence_with_minpoly(f, mp, seed, 2 * (m + 4));
      // Only keep draws whose true minimal degree is exactly m.
      if (kp::seq::berlekamp_massey(f, seq).size() != m + 1) continue;
      ++trials_done;

      bool holds = true;
      for (int off = -2; off <= 3; ++off) {
        const std::int64_t mu = static_cast<std::int64_t>(m) + off;
        if (mu < 1) continue;
        const bool nz = !f.is_zero(kp::matrix::det_gauss(
            f, kp::seq::lemma1_toeplitz(f, seq, static_cast<std::size_t>(mu))));
        if (nz) ++nonzero[static_cast<std::size_t>(off + 2)];
        // Lemma 1 asserts: nonzero at mu = m, zero for mu > m.
        if (off == 0 && !nz) holds = false;
        if (off > 0 && nz) holds = false;
      }
      pattern_holds += holds;
    }
    auto cell = [&](int off) {
      const std::int64_t mu = static_cast<std::int64_t>(m) + off;
      if (mu < 1) return std::string("-");
      return std::to_string(nonzero[static_cast<std::size_t>(off + 2)]) + "/" +
             std::to_string(kTrials);
    };
    table.add_row({std::to_string(m), cell(-2), cell(-1), cell(0), cell(1),
                   cell(2), cell(3),
                   std::to_string(pattern_holds) + "/" + std::to_string(kTrials)});
    report.begin_row("lemma1");
    report.put("m", m);
    report.put("pattern_holds", static_cast<std::uint64_t>(pattern_holds));
    report.put("trials", static_cast<std::uint64_t>(kTrials));
    report.put("ops", ops.counts().total());
    report.put("wall_ms", wt.elapsed_ms());
  }
  table.print();
  std::printf(
      "\ncells: #trials with det(T_mu) != 0.  Lemma 1 predicts mu=m column\n"
      "full and every mu>m column zero; mu<m columns may vary.\n");
  return 0;
}

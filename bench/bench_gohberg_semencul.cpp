// Experiment E12 (Figure 1): the Gohberg-Semencul representation.
// Applying T^{-1} through the formula costs four polynomial products
// (O(M(n)) work) instead of the O(n^2) dense product; construction from two
// Toeplitz solves beats forming the dense inverse.
#include <cstdio>
#include <vector>

#include "field/zp.h"
#include "matrix/gauss.h"
#include "seq/gohberg_semencul.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

using F = kp::field::Zp<1000003>;

int main() {
  F f;
  kp::util::Prng prng(11);
  kp::poly::PolyRing<F> ring(f);
  kp::util::BenchReport report("gohberg_semencul");

  std::printf("E12 (Figure 1): Gohberg-Semencul apply cost vs dense inverse\n\n");
  kp::util::Table t({"n", "gs apply ops", "dense matvec ops", "apply ratio",
                     "storage gs", "storage dense"});
  std::vector<double> ns, gs_ops;
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u}) {
    kp::util::WallTimer wt;
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    kp::matrix::Toeplitz<F> tp(n, diag);
    auto gs = kp::seq::gs_from_toeplitz_gauss(f, tp);
    if (!gs) continue;

    std::vector<F::Element> z(n);
    for (auto& e : z) e = f.random(prng);

    kp::util::OpScope s1;
    auto x1 = gs->apply(ring, z);
    const auto ops_gs = s1.counts().total();

    auto inv = kp::matrix::inverse_gauss(f, tp.to_dense(f));
    kp::util::OpScope s2;
    auto x2 = kp::matrix::mat_vec(f, *inv, z);
    const auto ops_dense = s2.counts().total();

    if (x1 != x2) {
      std::printf("MISMATCH at n=%zu\n", n);
      return 1;
    }
    ns.push_back(static_cast<double>(n));
    gs_ops.push_back(static_cast<double>(ops_gs));
    report.begin_row("gs_apply");
    report.put("n", n);
    report.put("ops_gs", ops_gs);
    report.put("ops_dense", ops_dense);
    report.put("wall_ms", wt.elapsed_ms());
    t.add_row({std::to_string(n), kp::util::Table::num(ops_gs),
               kp::util::Table::num(ops_dense),
               kp::util::Table::num(static_cast<double>(ops_gs) /
                                        static_cast<double>(ops_dense),
                                    3),
               std::to_string(2 * n) + " elems",
               std::to_string(n * n) + " elems"});
  }
  t.print();
  std::printf("\nfitted gs-apply exponent: %.2f  (M(n): subquadratic; dense: 2)\n",
              kp::util::fit_exponent(ns, gs_ops));

  std::printf("\nTrace formula (O(n) multiplies) spot check vs dense trace: ");
  {
    const std::size_t n = 64;
    std::vector<F::Element> diag(2 * n - 1);
    for (auto& v : diag) v = f.random(prng);
    kp::matrix::Toeplitz<F> tp(n, diag);
    auto gs = kp::seq::gs_from_toeplitz_gauss(f, tp);
    auto inv = kp::matrix::inverse_gauss(f, tp.to_dense(f));
    auto tr = f.zero();
    for (std::size_t i = 0; i < n; ++i) tr = f.add(tr, inv->at(i, i));
    std::printf("%s\n", (gs && f.eq(gs->trace(f), tr)) ? "ok" : "FAIL");
  }
  return 0;
}

// Experiments E7 and E13 (Theorem 5 / Figure 3 / Hoover et al.):
// the derivative transform multiplies circuit length by at most ~4 and
// depth by O(1) -- but ONLY with balanced (depth-weighted) accumulation
// trees; naive linear accumulation blows the depth up by the fan-out.
//
// Corpus: matrix product (summed), Berkowitz determinant, iterated products
// with extreme fan-out, and the Theorem-3 characteristic polynomial circuit.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "circuit/builders.h"
#include "circuit/derivative.h"
#include "circuit/field.h"
#include "core/baselines.h"
#include "field/zp.h"
#include "util/bench_json.h"
#include "util/tables.h"

using kp::circuit::Accumulation;
using kp::circuit::Circuit;
using kp::circuit::CircuitBuilderField;
using kp::circuit::NodeId;

namespace {

/// Sums a circuit's outputs into one scalar output (gradient needs that).
Circuit scalarize(Circuit c) {
  const auto outs = c.outputs();
  c.clear_outputs();
  std::vector<NodeId> layer(outs);
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(c.add(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  c.mark_output(layer[0]);
  return c;
}

Circuit berkowitz_det_circuit(std::size_t n) {
  Circuit c;
  CircuitBuilderField cf(c);
  kp::matrix::Matrix<CircuitBuilderField> a(n, n, cf.zero());
  for (auto& e : a.data()) e = c.input();
  auto p = kp::core::charpoly_berkowitz(cf, a);
  c.mark_output(p[0]);
  return c;
}

Circuit fanout_product_circuit(std::size_t t) {
  // Balanced product of (x + i): fan-out t on one input.
  Circuit c;
  const auto x = c.input();
  std::vector<NodeId> layer;
  for (std::size_t i = 1; i <= t; ++i) {
    layer.push_back(c.add(x, c.constant(static_cast<std::int64_t>(i))));
  }
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(c.mul(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  c.mark_output(layer[0]);
  return c;
}

}  // namespace

int main() {
  std::printf("E7 (Theorem 5): derivative transform length/depth ratios\n\n");
  struct Case {
    std::string name;
    Circuit c;
  };
  std::vector<Case> corpus;
  corpus.push_back({"matmul n=4 (summed)", scalarize(kp::circuit::build_matmul_circuit(4))});
  corpus.push_back({"matmul n=8 (summed)", scalarize(kp::circuit::build_matmul_circuit(8))});
  corpus.push_back({"berkowitz det n=4", berkowitz_det_circuit(4)});
  corpus.push_back({"berkowitz det n=6", berkowitz_det_circuit(6)});
  corpus.push_back({"fanout product t=64", fanout_product_circuit(64)});
  corpus.push_back({"fanout product t=256", fanout_product_circuit(256)});
  corpus.push_back({"det pipeline n=4", kp::circuit::build_det_circuit(4)});
  corpus.push_back({"det pipeline n=6", kp::circuit::build_det_circuit(6)});

  kp::util::BenchReport report("derivative");
  kp::util::Table t({"circuit", "len P", "depth P", "len Q", "len Q/len P",
                     "depth Q(bal)", "depth Q(lin)", "depth ratio(bal)"});
  for (auto& cs : corpus) {
    kp::util::WallTimer wt;
    const auto qb = kp::circuit::gradient(cs.c, Accumulation::kBalanced);
    const auto ql = kp::circuit::gradient(cs.c, Accumulation::kLinear);
    report.begin_row(cs.name);
    report.put("len_p", std::uint64_t{cs.c.size()});
    report.put("depth_p", static_cast<std::uint64_t>(cs.c.depth()));
    report.put("len_q", std::uint64_t{qb.size()});
    report.put("depth_q_balanced", static_cast<std::uint64_t>(qb.depth()));
    report.put("depth_q_linear", static_cast<std::uint64_t>(ql.depth()));
    report.put("wall_ms", wt.elapsed_ms());
    t.add_row({cs.name, kp::util::Table::num(std::uint64_t{cs.c.size()}),
               std::to_string(cs.c.depth()),
               kp::util::Table::num(std::uint64_t{qb.size()}),
               kp::util::Table::num(static_cast<double>(qb.size()) /
                                        static_cast<double>(cs.c.size()),
                                    3),
               std::to_string(qb.depth()), std::to_string(ql.depth()),
               kp::util::Table::num(static_cast<double>(qb.depth()) /
                                        static_cast<double>(cs.c.depth()),
                                    3)});
  }
  t.print();
  std::printf(
      "\nTheorem 5 predicts len Q <= ~4 len P and depth Q = O(depth P).\n"
      "E13 (Figure 3/Hoover): the lin column shows what naive accumulation\n"
      "does on high fan-out -- depth grows with fan-out t, while bal stays\n"
      "within a constant factor of depth P.\n");
  return 0;
}

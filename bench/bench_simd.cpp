// Per-dispatch-level ablation of the SIMD kernel backend (field/simd.h).
//
// Every kernel family (dot, sum, gather, batch_inverse, NTT product) is
// timed with the backend pinned to each available level -- scalar, AVX2,
// AVX-512, AVX-512+IFMA -- over the same inputs.  The bit-identity contract
// is asserted in-bench: each row carries an FNV-1a checksum of the output
// elements, and every level's checksum must equal the scalar kernel's.
// Those checksums land in BENCH_simd.json, so a forced-scalar build
// (-DKP_SIMD=OFF), a KP_SIMD=off environment, and the full SIMD build can
// be diffed for byte-identical element checksums across configurations.
//
// Exits non-zero on any mismatch; timing is reported, never gated.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "field/kernels.h"
#include "field/reference.h"
#include "field/simd.h"
#include "field/zp.h"
#include "poly/ntt.h"
#include "util/bench_json.h"
#include "util/op_count.h"
#include "util/prng.h"
#include "util/tables.h"

namespace {

namespace simd = kp::field::simd;
using Fast = kp::field::GFp;
using simd::SimdLevel;

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::printf("MISMATCH: %s\n", what);
    ++failures;
  }
}

/// Best-of-reps wall time of fn(), in milliseconds.
template <class Fn>
double time_ms(Fn&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    kp::util::WallTimer t;
    fn();
    const double ms = t.elapsed_ms();
    if (ms < best) best = ms;
  }
  return best;
}

std::vector<std::uint64_t> random_residues(std::uint64_t p, std::size_t n,
                                           std::uint64_t seed) {
  kp::util::Prng prng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = prng.below(p);
  return v;
}

/// FNV-1a over the output residues: an order-sensitive element checksum.
/// Identical across build configurations iff the elements are identical.
std::uint64_t fnv1a(const std::uint64_t* a, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    for (int b = 0; b < 8; ++b) {
      h ^= (a[i] >> (8 * b)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

/// The dispatch levels the ablation requests.  A level is skipped (not
/// degraded) when the hardware or the build lacks it, so a forced-scalar
/// build produces a scalar-only table with the same checksums.
struct Lvl {
  const char* name;
  SimdLevel level;
  bool ifma;
};
constexpr Lvl kLevels[] = {
    {"scalar", SimdLevel::kScalar, false},
    {"avx2", SimdLevel::kAvx2, false},
    {"avx512", SimdLevel::kAvx512, false},
    {"avx512+ifma", SimdLevel::kAvx512, true},
};

bool enter_level(const Lvl& l) {
  if (simd::set_simd_level(l.level) != l.level) return false;
  simd::set_simd_ifma(l.ifma);
  if (l.ifma && !simd::simd_ifma()) return false;
  // Non-IFMA rows on IFMA hardware must actually measure the 4-limb body.
  return l.ifma == simd::simd_ifma();
}

}  // namespace

int main() {
  const std::uint64_t p = kp::field::kNttPrime;
  Fast fast(p);
  kp::util::BenchReport report("simd");
  kp::util::Table table(
      {"kernel", "level", "n", "ms", "speedup", "checksum", "match"});

  // One output buffer per kernel family; the scalar row fixes the expected
  // checksum, every later level must reproduce it.
  auto add_row = [&](const char* kernel, const char* level, std::size_t n,
                     double scalar_ms, double ms, std::uint64_t checksum,
                     std::uint64_t scalar_checksum) {
    const bool match = checksum == scalar_checksum;
    check(match, kernel);
    const double speedup = ms > 0 ? scalar_ms / ms : 0;
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(checksum));
    table.add_row({kernel, level, std::to_string(n),
                   kp::util::Table::num(ms, 3), kp::util::Table::num(speedup, 2),
                   hex, match ? "yes" : "NO"});
    report.begin_row(kernel);
    report.put("level", level);
    report.put("n", n);
    report.put("ms", ms);
    report.put("speedup_vs_scalar", speedup);
    report.put("checksum", std::string(hex));
    report.put("match", match);
  };

  std::printf("SIMD dispatch-level ablation (p = %llu, max level %s%s)\n\n",
              static_cast<unsigned long long>(p),
              to_string(simd::simd_max_level()),
              simd::simd_ifma() ? "+ifma" : "");

  const std::size_t n = 4096;
  const auto va = random_residues(p, n, 1);
  const auto vb = random_residues(p, n, 2);
  const auto x = random_residues(p, 4 * n, 3);
  kp::util::Prng ip(4);
  std::vector<std::size_t> col(n);
  for (auto& c : col) c = ip.below(4 * n);
  auto nz = random_residues(p, n, 5);
  for (auto& v : nz) v |= 1;  // nonzero, for batch_inverse
  kp::poly::PolyRing<Fast> ring(fast, kp::poly::MulStrategy::kNtt);

  struct Fam {
    const char* name;
    int iters;
  };
  const Fam fams[] = {{"dot", 4000},        {"sum", 4000},
                      {"dot_gather", 2000}, {"batch_inverse", 200},
                      {"ntt_mul", 40}};

  for (const auto& fam : fams) {
    double scalar_ms = 0;
    std::uint64_t scalar_sum = 0;
    for (const auto& l : kLevels) {
      if (!enter_level(l)) continue;
      std::uint64_t sum = 0;
      double ms = 0;
      const std::string name = fam.name;
      if (name == "dot") {
        ms = time_ms([&] {
          for (int it = 0; it < fam.iters; ++it) {
            sum = kp::field::kernels::dot(fast, va.data(), vb.data(), n);
          }
        });
      } else if (name == "sum") {
        ms = time_ms([&] {
          for (int it = 0; it < fam.iters; ++it) {
            sum = kp::field::kernels::sum(fast, va.data(), n);
          }
        });
      } else if (name == "dot_gather") {
        ms = time_ms([&] {
          for (int it = 0; it < fam.iters; ++it) {
            sum = kp::field::kernels::dot_gather(fast, va.data(), col.data(),
                                                 x.data(), n);
          }
        });
      } else if (name == "batch_inverse") {
        std::vector<std::uint64_t> buf;
        ms = time_ms([&] {
          for (int it = 0; it < fam.iters; ++it) {
            buf = nz;
            const auto st =
                kp::field::kernels::batch_inverse(fast, buf.data(), n);
            check(st.ok(), "batch_inverse status");
          }
        });
        sum = fnv1a(buf.data(), buf.size());
      } else {  // ntt_mul
        std::vector<std::uint64_t> prod;
        ms = time_ms([&] {
          for (int it = 0; it < fam.iters; ++it) prod = ring.mul(va, vb);
        });
        sum = fnv1a(prod.data(), prod.size());
      }
      if (l.level == SimdLevel::kScalar) {
        scalar_ms = ms;
        scalar_sum = sum;
      }
      add_row(fam.name, l.name, n, scalar_ms, ms, sum, scalar_sum);
    }
  }

  simd::set_simd_level(simd::simd_max_level());
  simd::set_simd_ifma(true);

  table.print();

  const auto stats = simd::simd_stats();
  std::printf(
      "\nsimd_stats: level=%s ifma=%d dot=%llu sum=%llu gather=%llu "
      "batch_inverse=%llu ntt=%llu pointwise=%llu scale=%llu\n",
      stats.level, stats.ifma ? 1 : 0,
      static_cast<unsigned long long>(stats.dot),
      static_cast<unsigned long long>(stats.sum),
      static_cast<unsigned long long>(stats.gather),
      static_cast<unsigned long long>(stats.batch_inverse),
      static_cast<unsigned long long>(stats.ntt),
      static_cast<unsigned long long>(stats.pointwise),
      static_cast<unsigned long long>(stats.scale));

  report.write();
  if (failures) {
    std::printf("\n%d SIMD mismatch(es)\n", failures);
    return 1;
  }
  std::printf("\nall levels bit-identical to the scalar kernel path\n");
  return 0;
}
